// Kernighan–Lin pairwise refinement: cut never increases, balance is
// preserved, known-optimal partitions are fixed points.

#include "spectral/kernighan_lin.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "spectral/partitioners.hpp"
#include "support/rng.hpp"

namespace pigp::spectral {
namespace {

using graph::compute_metrics;
using graph::Graph;
using graph::Partitioning;
using graph::VertexId;

TEST(KernighanLin, FixesASingleBadSwap) {
  // Grid split down the middle but with one vertex swapped across: KL must
  // swap it back.
  const int side = 8;
  const Graph g = graph::grid_graph(side, side);
  Partitioning p;
  p.num_parts = 2;
  p.part.resize(64);
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      p.part[static_cast<std::size_t>(r * side + c)] = c < 4 ? 0 : 1;
    }
  }
  std::swap(p.part[3 * side + 0], p.part[3 * side + 7]);  // deep swap
  const double before = compute_metrics(g, p).cut_total;

  const KlStats stats = kernighan_lin_refine(g, p);
  const double after = compute_metrics(g, p).cut_total;
  EXPECT_LT(after, before);
  EXPECT_DOUBLE_EQ(after, 8.0);  // back to the optimal straight cut
  EXPECT_DOUBLE_EQ(stats.cut_after, after);
}

TEST(KernighanLin, OptimalCutIsAFixedPoint) {
  const Graph g = graph::grid_graph(10, 10);
  Partitioning p;
  p.num_parts = 2;
  p.part.resize(100);
  for (int v = 0; v < 100; ++v) {
    p.part[static_cast<std::size_t>(v)] = (v % 10) < 5 ? 0 : 1;
  }
  const KlStats stats = kernighan_lin_refine(g, p);
  EXPECT_DOUBLE_EQ(stats.cut_after, 10.0);
  EXPECT_DOUBLE_EQ(stats.cut_before, stats.cut_after);
}

class KlProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KlProperty, NeverWorsensAndPreservesWeights) {
  const Graph g =
      graph::random_geometric_graph(400, 0.08, GetParam() * 3 + 1);
  // Shuffled balanced 4-way assignment.
  pigp::SplitMix64 rng(GetParam());
  std::vector<VertexId> order(400);
  for (int v = 0; v < 400; ++v) order[static_cast<std::size_t>(v)] = v;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  Partitioning p;
  p.num_parts = 4;
  p.part.resize(400);
  for (std::size_t i = 0; i < order.size(); ++i) {
    p.part[static_cast<std::size_t>(order[i])] =
        static_cast<graph::PartId>(i % 4);
  }

  const auto before = compute_metrics(g, p);
  const KlStats stats = kernighan_lin_refine(g, p);
  const auto after = compute_metrics(g, p);

  EXPECT_LE(after.cut_total, before.cut_total);
  EXPECT_EQ(before.weight, after.weight);  // swaps preserve balance exactly
  EXPECT_LE(stats.cut_after, stats.cut_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KlProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(KernighanLin, ImprovesRandomPartitionSubstantially) {
  const Graph g = graph::random_geometric_graph(500, 0.07, 91);
  Partitioning p;
  p.num_parts = 2;
  p.part.resize(500);
  for (int v = 0; v < 500; ++v) {
    p.part[static_cast<std::size_t>(v)] = v % 2;  // striped: terrible cut
  }
  const double before = compute_metrics(g, p).cut_total;
  KlOptions opt;
  opt.max_passes = 10;
  (void)kernighan_lin_refine(g, p, opt);
  const double after = compute_metrics(g, p).cut_total;
  EXPECT_LT(after, 0.7 * before);
}

TEST(KernighanLin, RespectsUnequalWeights) {
  // A heavy vertex cannot be swapped with a light one.
  graph::GraphBuilder b;
  b.add_vertex(2.0);
  b.add_vertex(1.0);
  b.add_vertex(1.0);
  b.add_vertex(2.0);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Graph g = b.build();
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 1, 0, 1};  // cut = 3, but weights are already balanced
  const auto before = compute_metrics(g, p);
  (void)kernighan_lin_refine(g, p);
  const auto after = compute_metrics(g, p);
  EXPECT_EQ(before.weight, after.weight);
  EXPECT_LE(after.cut_total, before.cut_total);
}

TEST(KernighanLin, MultiwayPairSweep) {
  const Graph g = graph::grid_graph(12, 12);
  Partitioning p = recursive_graph_bisection(g, 6);
  const auto before = compute_metrics(g, p);
  const KlStats stats = kernighan_lin_refine(g, p);
  const auto after = compute_metrics(g, p);
  EXPECT_LE(after.cut_total, before.cut_total);
  EXPECT_EQ(before.weight, after.weight);
  EXPECT_GE(stats.passes, 1);
}

}  // namespace
}  // namespace pigp::spectral
