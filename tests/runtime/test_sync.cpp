// Behavioral tests for the annotated primitives in runtime/sync.hpp: the
// wrappers must behave exactly like the std types they wrap (the
// annotations are compile-time only).  The CondVar adopt/release dance is
// the one piece with real failure modes — losing the adopt would unlock a
// mutex we do not own; losing the release would double-unlock — so the
// handoff tests hammer it across threads.
#include "runtime/sync.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace pigp {
namespace {

TEST(Sync, MutexLockProvidesExclusion) {
  sync::Mutex mutex;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        sync::MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Sync, TryLockReflectsOwnership) {
  sync::Mutex mutex;
  ASSERT_TRUE(mutex.try_lock());
  // Contended try_lock must fail (tested from another thread: recursive
  // try_lock on the owning thread is UB for std::mutex).
  bool contended_result = true;
  std::thread probe([&] { contended_result = mutex.try_lock(); });
  probe.join();
  EXPECT_FALSE(contended_result);
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(Sync, CondVarHandoff) {
  sync::Mutex mutex;
  sync::CondVar cv;
  bool ready = false;
  int observed = 0;

  std::thread consumer([&] {
    sync::MutexLock lock(mutex);
    while (!ready) {
      cv.wait(mutex);
    }
    observed = 42;
  });

  {
    sync::MutexLock lock(mutex);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(Sync, CondVarWaitUntilTimesOut) {
  sync::Mutex mutex;
  sync::CondVar cv;

  sync::MutexLock lock(mutex);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  // Nobody notifies: every wake must be a timeout (spurious wakeups loop).
  std::cv_status status = std::cv_status::no_timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    status = cv.wait_until(mutex, deadline);
    if (status == std::cv_status::timeout) break;
  }
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(Sync, CondVarWaitUntilSeesNotification) {
  sync::Mutex mutex;
  sync::CondVar cv;
  bool ready = false;
  bool saw_ready = false;

  std::thread consumer([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    sync::MutexLock lock(mutex);
    while (!ready) {
      if (cv.wait_until(mutex, deadline) == std::cv_status::timeout) break;
    }
    saw_ready = ready;
  });

  {
    sync::MutexLock lock(mutex);
    ready = true;
  }
  cv.notify_all();
  consumer.join();
  EXPECT_TRUE(saw_ready);
}

// The mutex must still be held (and functional) after a CondVar wait — a
// broken Reattach would leave the unique_lock owning/releasing wrongly and
// this ping-pong would deadlock or corrupt `turn`.
TEST(Sync, CondVarPingPongKeepsMutexCoherent) {
  sync::Mutex mutex;
  sync::CondVar cv;
  int turn = 0;
  constexpr int kRounds = 200;

  auto player = [&](int parity) {
    for (int i = 0; i < kRounds; ++i) {
      sync::MutexLock lock(mutex);
      while (turn % 2 != parity) {
        cv.wait(mutex);
      }
      ++turn;
      cv.notify_one();
    }
  };
  std::thread even([&] { player(0); });
  std::thread odd([&] { player(1); });
  even.join();
  odd.join();
  EXPECT_EQ(turn, 2 * kRounds);
}

}  // namespace
}  // namespace pigp
