// parallel_for / parallel_reduce correctness and determinism.

#include "runtime/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace pigp::runtime {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&hits](std::int64_t i) {
    hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&touched](std::int64_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, NonZeroBase) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  parallel_for(pool, 10, 20, [&sum](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::int64_t i) {
                              if (i == 37) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(ParallelReduce, SumsDeterministically) {
  ThreadPool pool(8);
  const auto map = [](std::int64_t i) { return 0.1 * static_cast<double>(i); };
  const auto combine = [](double a, double b) { return a + b; };
  const double r1 = parallel_reduce(pool, 0, 100000, 0.0, map, combine);
  const double r2 = parallel_reduce(pool, 0, 100000, 0.0, map, combine);
  EXPECT_EQ(r1, r2);  // bitwise identical across runs
}

TEST(ParallelReduce, MatchesSerialForIntegers) {
  ThreadPool pool(6);
  const auto value = parallel_reduce(
      pool, 1, 1001, std::int64_t{0},
      [](std::int64_t i) { return i; },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(value, 500500);
}

TEST(ParallelReduce, MaxReduction) {
  ThreadPool pool(4);
  const auto value = parallel_reduce(
      pool, 0, 1000, std::int64_t{-1},
      [](std::int64_t i) { return (i * 7919) % 1000; },
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  EXPECT_EQ(value, 999);
}

}  // namespace
}  // namespace pigp::runtime
