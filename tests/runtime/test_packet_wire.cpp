// The tagged packet wire format and the message-filter chain: deterministic
// serialization, typed errors on truncated/corrupted payloads (never UB),
// and exact round-trips through every filter.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "runtime/net/filters.hpp"
#include "runtime/net/packet.hpp"

namespace pigp::net {
namespace {

Packet make_sample() {
  Packet p;
  p.pack(42);
  p.pack(3.25);
  p.pack_vector(std::vector<std::int32_t>{5, 7, 7, 100, 1000000});
  p.pack_vector(std::vector<std::int64_t>{-3, 0, 1LL << 40});
  p.pack_vector(std::vector<double>{0.5, -1.25});
  p.pack_vector(std::vector<std::int32_t>{});
  p.pack(static_cast<std::uint8_t>(9));
  return p;
}

void expect_sample(Packet& p) {
  EXPECT_EQ(p.unpack<int>(), 42);
  EXPECT_DOUBLE_EQ(p.unpack<double>(), 3.25);
  EXPECT_EQ(p.unpack_vector<std::int32_t>(),
            (std::vector<std::int32_t>{5, 7, 7, 100, 1000000}));
  EXPECT_EQ(p.unpack_vector<std::int64_t>(),
            (std::vector<std::int64_t>{-3, 0, 1LL << 40}));
  EXPECT_EQ(p.unpack_vector<double>(), (std::vector<double>{0.5, -1.25}));
  EXPECT_TRUE(p.unpack_vector<std::int32_t>().empty());
  EXPECT_EQ(p.unpack<std::uint8_t>(), 9);
}

TEST(PacketWire, DeterministicSerializationRoundTrip) {
  Packet a = make_sample();
  Packet b = make_sample();
  // Same pack sequence -> byte-identical image (the wire format has no
  // nondeterministic padding), and from_bytes restores it exactly.
  ASSERT_EQ(a.bytes(), b.bytes());
  Packet restored = Packet::from_bytes(a.bytes());
  expect_sample(restored);
}

TEST(PacketWire, TagMismatchThrowsTyped) {
  Packet p;
  p.pack_vector(std::vector<int>{1, 2, 3});
  EXPECT_THROW((void)p.unpack<int>(), TransportError);
}

TEST(PacketWire, ElementSizeMismatchThrowsTyped) {
  Packet p;
  p.pack_vector(std::vector<std::int64_t>{1, 2});
  EXPECT_THROW((void)p.unpack_vector<std::int32_t>(), TransportError);
}

TEST(PacketWire, EveryTruncationPrefixThrowsNotCrashes) {
  const std::vector<std::uint8_t> image = make_sample().bytes();
  for (std::size_t len = 0; len < image.size(); ++len) {
    Packet p = Packet::from_bytes(std::vector<std::uint8_t>(
        image.begin(), image.begin() + static_cast<std::ptrdiff_t>(len)));
    EXPECT_THROW(expect_sample(p), TransportError) << "prefix length " << len;
  }
}

TEST(PacketWire, CorruptedCountFailsBeforeAllocation) {
  Packet p;
  p.pack_vector(std::vector<std::int64_t>{1, 2, 3});
  std::vector<std::uint8_t> image = p.release_bytes();
  // Bytes 2..9 hold the u64 count; blow it up to an absurd value.  The
  // typed check must fire before any attempt to allocate count elements.
  for (std::size_t i = 2; i < 10; ++i) image[i] = 0xFF;
  Packet corrupted = Packet::from_bytes(std::move(image));
  EXPECT_THROW((void)corrupted.unpack_vector<std::int64_t>(),
               TransportError);
}

TEST(PacketWire, SingleByteCorruptionFuzz) {
  const std::vector<std::uint8_t> image = make_sample().bytes();
  std::mt19937 rng(12345);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> mutated = image;
    const std::size_t pos = rng() % mutated.size();
    const auto flip = static_cast<std::uint8_t>(1 + rng() % 255);
    mutated[pos] ^= flip;
    Packet p = Packet::from_bytes(std::move(mutated));
    // A flipped byte may silently change a value (payload bytes carry no
    // checksum) but must never escape the typed error path: either the
    // reader's unpack sequence completes or it throws TransportError.
    try {
      (void)p.unpack<int>();
      (void)p.unpack<double>();
      (void)p.unpack_vector<std::int32_t>();
      (void)p.unpack_vector<std::int64_t>();
      (void)p.unpack_vector<double>();
      (void)p.unpack_vector<std::int32_t>();
      (void)p.unpack<std::uint8_t>();
    } catch (const TransportError&) {
    }
  }
}

TEST(PacketWire, VarintRoundTripAndTruncation) {
  std::vector<std::uint8_t> buf;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 1ULL << 32,
                                  ~0ULL};
  for (const std::uint64_t v : values) append_varint(buf, v);
  std::size_t cursor = 0;
  for (const std::uint64_t v : values) {
    EXPECT_EQ(read_varint(buf.data(), buf.size(), cursor), v);
  }
  EXPECT_EQ(cursor, buf.size());
  for (std::size_t len = 0; len < buf.size(); ++len) {
    std::size_t c = 0;
    try {
      while (c < len) (void)read_varint(buf.data(), len, c);
    } catch (const TransportError&) {
      continue;  // truncated tail surfaces as the typed error
    }
  }
  EXPECT_EQ(zigzag_decode(zigzag_encode(-1)), -1);
  EXPECT_EQ(zigzag_decode(zigzag_encode(INT64_MIN)), INT64_MIN);
  EXPECT_EQ(zigzag_decode(zigzag_encode(INT64_MAX)), INT64_MAX);
}

// ------------------------------------------------------------------ filters

TEST(Filters, ParseChainSpecs) {
  EXPECT_TRUE(parse_filter_chain("").empty());
  const FilterChain delta = parse_filter_chain("delta");
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0]->name(), "delta");
  EXPECT_THROW((void)parse_filter_chain("nonsense"), TransportError);
  if (zlib_filter_available()) {
    EXPECT_EQ(parse_filter_chain("delta,zlib").size(), 2u);
  } else {
    EXPECT_THROW((void)parse_filter_chain("delta,zlib"), TransportError);
  }
}

TEST(Filters, DeltaShrinksSortedIndexVectors) {
  Packet p;
  std::vector<std::int64_t> sorted;
  for (std::int64_t v = 1000000; v < 1004000; ++v) sorted.push_back(v);
  p.pack_vector(sorted);
  const FilterChain chain = parse_filter_chain("delta");
  const std::vector<std::uint8_t> original = p.bytes();
  std::vector<std::uint8_t> encoded = encode_through(chain, original);
  // 8-byte elements with unit deltas should approach one byte each.
  EXPECT_LT(encoded.size(), original.size() / 4);
  const std::vector<std::uint8_t> decoded =
      decode_through({chain[0]->id()}, std::move(encoded));
  EXPECT_EQ(decoded, original);
}

TEST(Filters, DeltaIsBijectiveOnUnsortedAndExtremeValues) {
  Packet p;
  p.pack_vector(std::vector<std::int64_t>{INT64_MAX, INT64_MIN, 0, -1, 7});
  p.pack_vector(std::vector<std::int32_t>{INT32_MIN, INT32_MAX, -5, 5});
  std::vector<std::uint32_t> random_u32;
  std::mt19937 rng(99);
  for (int i = 0; i < 1000; ++i) random_u32.push_back(rng());
  p.pack_vector(random_u32);
  p.pack(1.5);  // scalars and non-integer-width vectors pass through
  p.pack_vector(std::vector<double>{1.0, 2.0});
  const FilterChain chain = parse_filter_chain("delta");
  const std::vector<std::uint8_t> original = p.bytes();
  const std::vector<std::uint8_t> decoded = decode_through(
      {chain[0]->id()}, encode_through(chain, original));
  EXPECT_EQ(decoded, original);
}

TEST(Filters, DecodeOfGarbageThrowsTyped) {
  const FilterChain chain = parse_filter_chain("delta");
  std::mt19937 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(1 + rng() % 64);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    try {
      (void)chain[0]->decode(garbage);
    } catch (const TransportError&) {
    }
  }
  EXPECT_THROW((void)decode_through({0xEE}, {1, 2, 3}), TransportError);
}

TEST(Filters, ZlibRoundTripWhenAvailable) {
  if (!zlib_filter_available()) GTEST_SKIP() << "built without zlib";
  const FilterChain chain = parse_filter_chain("delta,zlib");
  Packet p;
  std::vector<std::int32_t> repetitive(5000, 123456);
  p.pack_vector(repetitive);
  const std::vector<std::uint8_t> original = p.bytes();
  std::vector<std::uint8_t> encoded = encode_through(chain, original);
  EXPECT_LT(encoded.size(), original.size() / 8);
  std::vector<std::uint8_t> ids;
  for (const auto& f : chain) ids.push_back(f->id());
  EXPECT_EQ(decode_through(ids, std::move(encoded)), original);
}

}  // namespace
}  // namespace pigp::net
