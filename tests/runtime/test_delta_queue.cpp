// BoundedQueue: the backpressure and shutdown-drain contracts the async
// session's ingest pipeline is built on, plus an MPMC stress run.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/delta_queue.hpp"

namespace pigp::runtime {
namespace {

using namespace std::chrono_literals;

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const std::optional<int> item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.high_watermark(), 4u);
}

TEST(BoundedQueue, CapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
}

TEST(BoundedQueue, TryPushRefusesWhenFullWithoutConsuming) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  int item = 2;
  EXPECT_FALSE(q.try_push(item));
  EXPECT_EQ(item, 2);  // left untouched for the caller
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.try_push(item));
  EXPECT_EQ(q.pop().value_or(-1), 2);
}

TEST(BoundedQueue, TryPopReturnsNulloptWhenEmpty) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
  ASSERT_TRUE(q.push(7));
  EXPECT_EQ(q.try_pop().value_or(-1), 7);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, PopForTimesOutOnEmptyQueue) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.pop_for(1ms).has_value());
  ASSERT_TRUE(q.push(9));
  EXPECT_EQ(q.pop_for(1ms).value_or(-1), 9);
}

TEST(BoundedQueue, PushBlocksUntilAConsumerMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(pushed.load());  // still blocked on backpressure
  EXPECT_EQ(q.pop().value_or(-1), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value_or(-1), 2);
}

TEST(BoundedQueue, CloseWakesABlockedProducerWithFalse) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(10ms);
  q.close();
  producer.join();
  // The refused item was never enqueued; the pre-close item drains.
  EXPECT_EQ(q.pop().value_or(-1), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseWakesABlockedConsumerWithNullopt) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(10ms);
  q.close();
  consumer.join();
}

TEST(BoundedQueue, ShutdownDrainDeliversEverythingEnqueuedBeforeClose) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(99));  // refused immediately
  for (int i = 0; i < 5; ++i) {
    const std::optional<int> item = q.pop();  // must not block
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(q.pop().has_value());      // drained + closed
  EXPECT_FALSE(q.pop_for(1ms).has_value());
  q.close();  // idempotent
}

TEST(BoundedQueue, MpmcStressDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(16);  // small: forces constant backpressure

  std::vector<std::future<void>> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.push_back(std::async(std::launch::async, [&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    }));
  }
  std::vector<std::future<std::vector<int>>> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.push_back(std::async(std::launch::async, [&q] {
      std::vector<int> seen;
      while (std::optional<int> item = q.pop()) seen.push_back(*item);
      return seen;
    }));
  }
  for (auto& p : producers) p.get();
  q.close();

  std::vector<int> all;
  for (auto& c : consumers) {
    const std::vector<int> seen = c.get();
    all.insert(all.end(), seen.begin(), seen.end());
  }
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i) << "lost or duplicated";
  }
  EXPECT_LE(q.high_watermark(), q.capacity());
  EXPECT_GE(q.high_watermark(), 1u);
}

}  // namespace
}  // namespace pigp::runtime
