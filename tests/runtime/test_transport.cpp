// The pluggable Transport layer: TCP framing/mesh/timeouts, the loopback
// executor, and bit-parity of a full SPMD repartition between the
// in-process (Machine) transport and real TCP sockets.

#include "runtime/net/tcp_transport.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/spmd_igp.hpp"
#include "mesh/paper_meshes.hpp"
#include "runtime/net/transport.hpp"
#include "spectral/partitioners.hpp"

namespace pigp::net {
namespace {

/// Run \p body on one thread per rank over raw TcpTransports (no loopback
/// barrier decoration — these tests exercise the transport alone and share
/// nothing between ranks except the sockets).
void run_raw_tcp(int num_ranks, const TcpOptions& options,
                 const std::function<void(TcpTransport&)>& body) {
  const LocalTcpGroup group = make_local_tcp_group(num_ranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        TcpTransport transport(r, group.endpoints,
                               group.listen_fds[static_cast<std::size_t>(r)],
                               options);
        body(transport);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

TEST(TcpTransport, PointToPointFifoAcrossFullMesh) {
  run_raw_tcp(4, {}, [](TcpTransport& t) {
    for (int peer = 0; peer < t.num_ranks(); ++peer) {
      for (int i = 0; i < 5; ++i) {
        Packet p;
        p.pack(t.rank() * 1000 + i);
        p.pack_vector(std::vector<std::int64_t>{t.rank(), peer, i});
        t.send(peer, std::move(p));
      }
    }
    for (int peer = 0; peer < t.num_ranks(); ++peer) {
      for (int i = 0; i < 5; ++i) {  // FIFO per sender, including self
        Packet p = t.recv(peer);
        EXPECT_EQ(p.unpack<int>(), peer * 1000 + i);
        EXPECT_EQ(p.unpack_vector<std::int64_t>(),
                  (std::vector<std::int64_t>{peer, t.rank(), i}));
      }
    }
  });
}

TEST(TcpTransport, CollectivesMatchMachineSemantics) {
  // Non-associative op: rank-ordered reduction means TCP must reproduce
  // the Machine's result bit for bit.
  const auto op = [](double a, double b) { return a / 2.0 + b; };
  std::vector<double> machine_result(5, 0.0);
  runtime::Machine machine(5);
  machine.run([&](runtime::RankContext& ctx) {
    machine_result[static_cast<std::size_t>(ctx.rank())] =
        ctx.allreduce(1.0 + ctx.rank() * 0.1, op);
  });
  std::vector<double> tcp_result(5, 0.0);
  run_raw_tcp(5, {}, [&](TcpTransport& t) {
    tcp_result[static_cast<std::size_t>(t.rank())] =
        t.allreduce(1.0 + t.rank() * 0.1, op);

    Packet mine;
    mine.pack_vector(std::vector<std::int32_t>{t.rank(), t.rank() * 7});
    std::vector<Packet> all = t.allgather(std::move(mine));
    ASSERT_EQ(all.size(), 5u);
    for (int r = 0; r < 5; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)].unpack_vector<std::int32_t>(),
                (std::vector<std::int32_t>{r, r * 7}));
    }

    Packet b;
    if (t.rank() == 3) b.pack_vector(std::vector<double>{1.5, -2.5});
    Packet out = t.broadcast(3, std::move(b));
    EXPECT_EQ(out.unpack_vector<double>(), (std::vector<double>{1.5, -2.5}));

    t.barrier();
  });
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(machine_result[static_cast<std::size_t>(r)],
              tcp_result[static_cast<std::size_t>(r)]);
  }
}

TEST(TcpTransport, FilterChainShrinksWireBytes) {
  std::vector<std::int64_t> sorted(4000);
  std::iota(sorted.begin(), sorted.end(), 5000000);
  std::uint64_t raw_bytes = 0;
  std::uint64_t filtered_bytes = 0;
  run_raw_tcp(2, {}, [&](TcpTransport& t) {
    if (t.rank() == 0) {
      Packet p;
      p.pack_vector(sorted);
      t.send(1, std::move(p));
      raw_bytes = t.bytes_sent();
    } else {
      EXPECT_EQ(t.recv(0).unpack_vector<std::int64_t>(), sorted);
    }
  });
  TcpOptions with_filters;
  with_filters.filters = "delta";
  run_raw_tcp(2, with_filters, [&](TcpTransport& t) {
    if (t.rank() == 0) {
      Packet p;
      p.pack_vector(sorted);
      t.send(1, std::move(p));
      filtered_bytes = t.bytes_sent();
    } else {
      // Decoded by the chain recorded in the frame header — the payload
      // arrives bit-identical to the unfiltered run.
      EXPECT_EQ(t.recv(0).unpack_vector<std::int64_t>(), sorted);
    }
  });
  EXPECT_LT(filtered_bytes, raw_bytes / 4);
}

TEST(TcpTransport, RecvTimeoutSurfacesAsTransportError) {
  TcpOptions options;
  options.recv_timeout_ms = 100;
  run_raw_tcp(2, options, [](TcpTransport& t) {
    if (t.rank() == 0) {
      try {
        (void)t.recv(1);  // rank 1 never sends
        FAIL() << "recv should have timed out";
      } catch (const TransportError& e) {
        EXPECT_NE(std::string(e.what()).find("timed out"),
                  std::string::npos);
      }
      Packet done;
      done.pack(1);
      t.send(1, std::move(done));  // release rank 1's wait loop
    } else {
      // Stay alive until rank 0 has observed its timeout — exiting early
      // would surface as "peer closed" instead.
      for (;;) {
        try {
          Packet p = t.recv(0);
          EXPECT_EQ(p.unpack<int>(), 1);
          break;
        } catch (const TransportError&) {
          // our own 100 ms timeout; keep waiting
        }
      }
    }
  });
}

TEST(TcpTransport, ConnectRetriesUntilLateListenerBinds) {
  // Rank 1 starts first and must retry its connect to rank 0, whose
  // listener only binds ~200 ms later (workers may launch in any order).
  LocalTcpGroup group = make_local_tcp_group(2);
  // Free rank 0's pre-bound port so early connects are refused; the late
  // thread re-binds it with the bind-own constructor.
  ::close(group.listen_fds[0]);
  TcpOptions options;
  options.connect_timeout_ms = 10000;
  std::thread rank1([&] {
    TcpTransport t(1, group.endpoints, group.listen_fds[1], options);
    Packet p = t.recv(0);
    EXPECT_EQ(p.unpack<int>(), 77);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  TcpTransport t0(0, group.endpoints, options);
  Packet hello;
  hello.pack(77);
  t0.send(1, std::move(hello));
  rank1.join();
}

TEST(TcpTransport, PeerClosingReleasesBlockedRecv) {
  run_raw_tcp(2, {}, [](TcpTransport& t) {
    if (t.rank() == 0) {
      t.close();  // orderly shutdown; rank 1 is (or will be) blocked
      EXPECT_THROW(t.send(1, Packet()), TransportError);
    } else {
      try {
        (void)t.recv(0);
        FAIL() << "recv should observe the closed peer";
      } catch (const TransportError& e) {
        EXPECT_NE(std::string(e.what()).find("peer closed"),
                  std::string::npos);
      }
    }
  });
}

TEST(TcpLoopback, RankFailureAbortsCollectivePeers) {
  // A rank that throws mid-protocol must release peers parked in a
  // collective instead of deadlocking them.
  try {
    run_tcp_loopback(3, {}, [](Transport& t) {
      if (t.rank() == 2) throw std::runtime_error("rank 2 died");
      t.barrier();  // would hang forever without abort propagation
      for (;;) (void)t.allgather(Packet());
    });
    FAIL() << "the rank failure should propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 2 died");
  } catch (const TransportError&) {
    // Also acceptable: a peer's abort error arrived first.
  }
}

TEST(TcpLoopback, SpmdRepartitionBitParityWithInProcess) {
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(600, {80}, 17);
  const graph::Partitioning initial =
      spectral::recursive_spectral_bisection(seq.graphs[0], 8);

  core::MachineExecutor in_process(4);
  const core::IgpResult expected =
      core::spmd_repartition(in_process, seq.graphs[1], initial,
                             seq.graphs[0].num_vertices());

  for (const char* filters : {"", "delta"}) {
    TcpOptions options;
    options.filters = filters;
    core::TcpLoopbackExecutor tcp(4, options);
    const core::IgpResult actual = core::spmd_repartition(
        tcp, seq.graphs[1], initial, seq.graphs[0].num_vertices());
    EXPECT_EQ(expected.partitioning.part, actual.partitioning.part)
        << "filters=\"" << filters << "\"";
    EXPECT_EQ(expected.balanced, actual.balanced);
    EXPECT_EQ(expected.stages, actual.stages);
  }
}

}  // namespace
}  // namespace pigp::net
