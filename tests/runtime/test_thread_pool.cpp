// ThreadPool: task execution, results, exception propagation.

#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "support/check.hpp"

namespace pigp::runtime {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SingleWorkerStillWorks) {
  ThreadPool pool(1);
  auto a = pool.submit([]() { return 1; });
  auto b = pool.submit([]() { return 2; });
  EXPECT_EQ(a.get() + b.get(), 3);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), CheckError);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter]() { ++counter; });
    }
  }  // destructor must run all queued tasks before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

}  // namespace
}  // namespace pigp::runtime
