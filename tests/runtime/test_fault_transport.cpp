// The chaos wrapper in isolation: script parsing (accepting the documented
// grammar, rejecting everything else as a *fatal* TransportError), exact
// per-point/per-rank/per-ordinal firing, the one-shot fire budget that
// lives in the shared FaultScript (so a fault poisons one attempt and the
// retry runs clean), kill stickiness within a transport instance, and the
// guarantee that a scripted corruption is always *detected* — by the
// receiver's checked unpack, or by a filter chain walking the bytes —
// never silently decoded.

#include "runtime/net/fault_transport.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runtime/net/error.hpp"
#include "runtime/net/packet.hpp"
#include "runtime/net/tcp_transport.hpp"
#include "runtime/net/transport.hpp"

namespace pigp::net {
namespace {

/// Expect the expression to throw a TransportError with the given class.
template <typename Fn>
void expect_transport_error(Fn&& fn, FaultClass expected_class) {
  try {
    fn();
    FAIL() << "expected a TransportError";
  } catch (const TransportError& e) {
    EXPECT_TRUE(e.fault_class() == expected_class) << e.what();
  }
}

/// Minimal single-rank loopback used to observe the wrapper's own behavior
/// (what reached the inner transport, in what order) without sockets.
class RecordingTransport final : public Transport {
 public:
  [[nodiscard]] int rank() const noexcept override { return 0; }
  [[nodiscard]] int num_ranks() const noexcept override { return 2; }

  void send(int to, Packet packet) override {
    (void)to;
    delivered.push_back(std::move(packet));
  }
  [[nodiscard]] Packet recv(int from) override {
    (void)from;
    if (delivered.empty()) throw TransportError("recording queue empty");
    Packet p = std::move(delivered.front());
    delivered.pop_front();
    return p;
  }
  void barrier() override { ++barriers; }
  [[nodiscard]] double allreduce(
      double value,
      const std::function<double(double, double)>& op) override {
    (void)op;
    return value;
  }
  [[nodiscard]] std::vector<Packet> allgather(Packet packet) override {
    std::vector<Packet> out;
    out.push_back(std::move(packet));
    return out;
  }
  [[nodiscard]] Packet broadcast(int root, Packet packet) override {
    (void)root;
    return packet;
  }

  std::deque<Packet> delivered;
  int barriers = 0;
};

Packet int_vector_packet() {
  Packet p;
  p.pack_vector(std::vector<int>{1, 2, 3});
  return p;
}

// ------------------------------------------------------------------ parser

TEST(FaultScriptParse, EmptySpecIsNull) {
  EXPECT_EQ(parse_fault_script(""), nullptr);
  EXPECT_EQ(parse_fault_script("   \t "), nullptr);
}

TEST(FaultScriptParse, FullGrammar) {
  const auto script = parse_fault_script(
      "seed=7; rank1:send@3:corrupt ;any@5:delay=20/2;recv@2:disconnect;"
      "rank0:any@12:kill;send@1:drop/0");
  ASSERT_NE(script, nullptr);
  EXPECT_EQ(script->seed(), 7u);
  ASSERT_EQ(script->rules().size(), 5u);

  const FaultRule& corrupt = script->rules()[0];
  EXPECT_EQ(corrupt.rank, 1);
  EXPECT_EQ(corrupt.point, FaultPoint::send);
  EXPECT_EQ(corrupt.at_op, 3u);
  EXPECT_EQ(corrupt.kind, FaultKind::corrupt);
  EXPECT_EQ(corrupt.times, 1);  // default: one-shot

  const FaultRule& delay = script->rules()[1];
  EXPECT_EQ(delay.rank, -1);  // default: every rank
  EXPECT_EQ(delay.point, FaultPoint::any);
  EXPECT_EQ(delay.kind, FaultKind::delay);
  EXPECT_EQ(delay.param, 20u);
  EXPECT_EQ(delay.times, 2);

  EXPECT_EQ(script->rules()[2].kind, FaultKind::disconnect);
  EXPECT_EQ(script->rules()[3].kind, FaultKind::kill);
  EXPECT_EQ(script->rules()[4].times, 0);  // 0 = unlimited

  EXPECT_TRUE(script->has_kind(FaultKind::drop));
  EXPECT_TRUE(script->has_kind(FaultKind::delay));
}

TEST(FaultScriptParse, RejectsMalformedSpecsAsFatal) {
  const char* bad[] = {
      "bogus",                 // no point@ordinal
      "send@0:kill",           // ordinal must be >= 1
      "send@1:zap",            // unknown kind
      "rankx:send@1:kill",     // bad rank
      "rank1 send@1:kill",     // missing ':' after rank
      "recv@1:drop",           // drop is send-only
      "barrier@1:corrupt",     // corrupt needs a payload-carrying point
      "recv@1:corrupt",        // recv has no outgoing payload either
      "send@1:delay",          // delay needs a parameter
      "send@1:delay=2000",     // over the 1000 ms cap
      "send@1:kill=5",         // only delay takes a parameter
      "send@1:corrupt/x",      // bad fire count
      "seed=x;send@1:kill",    // bad seed
      "seed=3",                // seed alone: no rules
      ";",                     // empty entries only: no rules
  };
  for (const char* spec : bad) {
    expect_transport_error([spec] { (void)parse_fault_script(spec); },
                           FaultClass::fatal);
  }
}

TEST(FaultTransport, NullScriptIsFatal) {
  RecordingTransport inner;
  expect_transport_error(
      [&inner] { FaultInjectingTransport chaos(inner, nullptr); },
      FaultClass::fatal);
}

// --------------------------------------------------------------- semantics

TEST(FaultTransport, DelayIsBenignAndDropSwallowsExactlyOneSend) {
  RecordingTransport inner;
  FaultInjectingTransport chaos(
      inner, parse_fault_script("send@1:delay=1;send@2:drop"));
  chaos.send(1, int_vector_packet());  // delayed, delivered
  chaos.send(1, int_vector_packet());  // dropped
  chaos.send(1, int_vector_packet());  // delivered
  EXPECT_EQ(inner.delivered.size(), 2u);
}

TEST(FaultTransport, OrdinalCountsPerPoint) {
  RecordingTransport inner;
  FaultInjectingTransport chaos(inner,
                                parse_fault_script("recv@2:disconnect"));
  chaos.send(1, int_vector_packet());
  chaos.send(1, int_vector_packet());
  (void)chaos.recv(1);  // recv #1: sends did not advance the recv ordinal
  expect_transport_error([&chaos] { (void)chaos.recv(1); },
                         FaultClass::retryable);
  chaos.barrier();  // disconnect is transient: later ops still work
  EXPECT_EQ(inner.barriers, 1);
}

TEST(FaultTransport, AnyMatchesCombinedOrdinal) {
  RecordingTransport inner;
  FaultInjectingTransport chaos(inner,
                                parse_fault_script("any@3:disconnect"));
  chaos.send(1, int_vector_packet());                    // any #1
  chaos.barrier();                                       // any #2
  expect_transport_error(
      [&chaos] { (void)chaos.allreduce(1.0, [](double a, double b) {
        return a + b;
      }); },
      FaultClass::retryable);  // any #3
}

TEST(FaultTransport, RankScopedRuleDoesNotFireOnOtherRanks) {
  RecordingTransport inner;  // rank 0
  FaultInjectingTransport chaos(inner,
                                parse_fault_script("rank1:any@1:kill"));
  chaos.send(1, int_vector_packet());
  chaos.barrier();
  EXPECT_EQ(inner.delivered.size(), 1u);
  EXPECT_EQ(inner.barriers, 1);
}

TEST(FaultTransport, KillPoisonsEveryLaterOperation) {
  RecordingTransport inner;
  auto script = parse_fault_script("any@2:kill");
  FaultInjectingTransport chaos(inner, script);
  chaos.send(1, int_vector_packet());
  expect_transport_error([&chaos] { chaos.barrier(); },
                         FaultClass::retryable);
  // Killed state is sticky for this instance, independent of the budget.
  expect_transport_error([&chaos] { chaos.send(1, int_vector_packet()); },
                         FaultClass::retryable);
  expect_transport_error([&chaos] { (void)chaos.recv(1); },
                         FaultClass::retryable);
  EXPECT_EQ(inner.barriers, 0);
  EXPECT_EQ(inner.delivered.size(), 1u);

  // ... but a fresh wrapper over the same script runs clean: the one-shot
  // budget was spent.  This is the retry-attempt lifecycle.
  FaultInjectingTransport retry(inner, script);
  retry.send(1, int_vector_packet());
  retry.barrier();
  EXPECT_EQ(inner.barriers, 1);
}

TEST(FaultTransport, FireBudgetIsSharedAcrossInstances) {
  RecordingTransport inner;
  auto script = parse_fault_script("send@1:disconnect/2");
  for (int attempt = 0; attempt < 2; ++attempt) {
    FaultInjectingTransport chaos(inner, script);
    expect_transport_error(
        [&chaos] { chaos.send(1, int_vector_packet()); },
        FaultClass::retryable);
  }
  EXPECT_EQ(script->fired(0), 2);
  FaultInjectingTransport third(inner, script);
  third.send(1, int_vector_packet());  // budget exhausted: clean
  EXPECT_EQ(script->fired(0), 2);
}

TEST(FaultTransport, UnlimitedBudgetFiresEveryAttempt) {
  RecordingTransport inner;
  auto script = parse_fault_script("send@1:disconnect/0");
  for (int attempt = 0; attempt < 3; ++attempt) {
    FaultInjectingTransport chaos(inner, script);
    expect_transport_error(
        [&chaos] { chaos.send(1, int_vector_packet()); },
        FaultClass::retryable);
  }
  EXPECT_EQ(script->fired(0), 3);
}

TEST(FaultTransport, CorruptionIsAlwaysDetectedAtUnpack) {
  // Both seed parities (flipping the tag byte vs the element-size byte)
  // must produce a typed error from the checked unpack — never garbage.
  for (const char* spec : {"seed=0;send@1:corrupt", "seed=1;send@1:corrupt"}) {
    RecordingTransport inner;
    FaultInjectingTransport chaos(inner, parse_fault_script(spec));
    chaos.send(1, int_vector_packet());
    ASSERT_EQ(inner.delivered.size(), 1u);
    Packet received = inner.recv(0);
    expect_transport_error(
        [&received] { (void)received.unpack_vector<int>(); },
        FaultClass::retryable);
  }
}

// --------------------------------------------------------- real wire pairs

TEST(FaultTransport, CorruptOverTcpWithFiltersSurfacesTyped) {
  // A corrupted structural byte must surface as a typed TransportError
  // even when a filter chain sits between the chaos wrapper and the wire:
  // the delta filter walks the packet's tags, so it either rejects the
  // corrupt frame itself or passes it through for the receiver's unpack
  // to reject.  Never a hang, never silently-decoded garbage.
  TcpOptions options;
  options.recv_timeout_ms = 5000;
  options.filters = "delta";
  auto script = parse_fault_script("rank0:send@1:corrupt");
  EXPECT_THROW(
      run_tcp_loopback(2, options,
                       [&script](Transport& t) {
                         FaultInjectingTransport chaos(t, script);
                         if (chaos.rank() == 0) {
                           chaos.send(1, int_vector_packet());
                           (void)chaos.recv(1);  // peer aborts: typed error
                         } else {
                           Packet p = chaos.recv(0);
                           (void)p.unpack_vector<int>();
                           chaos.send(0, int_vector_packet());
                         }
                       }),
      TransportError);
  EXPECT_EQ(script->fired(0), 1);
}

TEST(FaultTransport, DropOverTcpTimesOutPromptlyAndTyped) {
  TcpOptions options;
  options.recv_timeout_ms = 200;
  auto script = parse_fault_script("rank0:send@1:drop");
  EXPECT_THROW(
      run_tcp_loopback(2, options,
                       [&script](Transport& t) {
                         FaultInjectingTransport chaos(t, script);
                         if (chaos.rank() == 0) {
                           chaos.send(1, int_vector_packet());  // swallowed
                         } else {
                           (void)chaos.recv(0);  // bounded: recv timeout
                         }
                       }),
      TransportError);
  EXPECT_EQ(script->fired(0), 1);
}

}  // namespace
}  // namespace pigp::net
