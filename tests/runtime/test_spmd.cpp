// SPMD Machine: message passing, barrier, collectives.

#include "runtime/spmd.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace pigp::runtime {
namespace {

TEST(Spmd, RingPass) {
  Machine machine(8);
  std::vector<int> received(8, -1);
  machine.run([&received](RankContext& ctx) {
    Packet p;
    p.pack(ctx.rank());
    ctx.send((ctx.rank() + 1) % ctx.num_ranks(), std::move(p));
    Packet in = ctx.recv((ctx.rank() + ctx.num_ranks() - 1) %
                         ctx.num_ranks());
    received[static_cast<std::size_t>(ctx.rank())] = in.unpack<int>();
  });
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(received[static_cast<std::size_t>(r)], (r + 7) % 8);
  }
}

TEST(Spmd, FifoPerSender) {
  Machine machine(2);
  std::vector<int> order;
  machine.run([&order](RankContext& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        Packet p;
        p.pack(i);
        ctx.send(1, std::move(p));
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        Packet p = ctx.recv(0);
        order.push_back(p.unpack<int>());
      }
    }
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(Spmd, AllreduceSum) {
  Machine machine(16);
  std::vector<double> results(16, 0.0);
  machine.run([&results](RankContext& ctx) {
    const double total = ctx.allreduce(
        static_cast<double>(ctx.rank() + 1),
        [](double a, double b) { return a + b; });
    results[static_cast<std::size_t>(ctx.rank())] = total;
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 136.0);  // 1 + ... + 16
}

TEST(Spmd, AllreduceMax) {
  Machine machine(5);
  machine.run([](RankContext& ctx) {
    const double mx =
        ctx.allreduce(static_cast<double>((ctx.rank() * 13) % 5),
                      [](double a, double b) { return std::max(a, b); });
    EXPECT_DOUBLE_EQ(mx, 4.0);
  });
}

TEST(Spmd, AllgatherDeliversRankOrder) {
  Machine machine(6);
  machine.run([](RankContext& ctx) {
    Packet p;
    p.pack(ctx.rank() * 100);
    auto all = ctx.allgather(std::move(p));
    ASSERT_EQ(all.size(), 6u);
    for (int r = 0; r < 6; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)].unpack<int>(), r * 100);
    }
  });
}

TEST(Spmd, BroadcastFromNonzeroRoot) {
  Machine machine(4);
  machine.run([](RankContext& ctx) {
    Packet p;
    if (ctx.rank() == 2) p.pack_vector(std::vector<int>{1, 2, 3});
    Packet out = ctx.broadcast(2, std::move(p));
    EXPECT_EQ(out.unpack_vector<int>(), (std::vector<int>{1, 2, 3}));
  });
}

TEST(Spmd, BarrierSeparatesPhases) {
  Machine machine(8);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  machine.run([&phase1, &violated](RankContext& ctx) {
    ++phase1;
    ctx.barrier();
    if (phase1.load() != 8) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(Spmd, PacketVectorRoundTrip) {
  Packet p;
  p.pack(3.25);
  p.pack_vector(std::vector<std::int64_t>{10, 20, 30});
  p.pack(7);
  EXPECT_DOUBLE_EQ(p.unpack<double>(), 3.25);
  EXPECT_EQ(p.unpack_vector<std::int64_t>(),
            (std::vector<std::int64_t>{10, 20, 30}));
  EXPECT_EQ(p.unpack<int>(), 7);
}

TEST(Spmd, PacketUnderrunThrows) {
  Packet p;
  p.pack(1);
  (void)p.unpack<int>();
  EXPECT_THROW((void)p.unpack<int>(), CheckError);
}

TEST(Spmd, ExceptionInOneRankPropagates) {
  Machine machine(3);
  EXPECT_THROW(machine.run([](RankContext& ctx) {
    if (ctx.rank() == 1) throw std::runtime_error("rank failure");
  }),
               std::runtime_error);
}

// Regression: a rank dying mid-collective used to leave its peers parked
// forever in barrier/allgather/recv; the abort protocol must wake them,
// swallow their abort unwinds, and rethrow the real exception.
TEST(Spmd, ThrowingRankReleasesPeersBlockedInBarrier) {
  Machine machine(4);
  EXPECT_THROW(machine.run([](RankContext& ctx) {
    if (ctx.rank() == 3) throw std::runtime_error("rank 3 died");
    ctx.barrier();  // would deadlock without abort propagation
  }),
               std::runtime_error);
}

TEST(Spmd, ThrowingRankReleasesPeersBlockedInAllgather) {
  Machine machine(4);
  EXPECT_THROW(machine.run([](RankContext& ctx) {
    if (ctx.rank() == 2) throw std::runtime_error("rank 2 died");
    Packet p;
    p.pack(ctx.rank());
    for (;;) (void)ctx.allgather(Packet(p));
  }),
               std::runtime_error);
}

TEST(Spmd, ThrowingRankReleasesPeersBlockedInRecv) {
  Machine machine(3);
  EXPECT_THROW(machine.run([](RankContext& ctx) {
    if (ctx.rank() == 0) throw std::runtime_error("rank 0 died");
    (void)ctx.recv(0);  // rank 0 never sends
  }),
               std::runtime_error);
}

TEST(Spmd, MachineReusableAfterAbort) {
  Machine machine(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(machine.run([](RankContext& ctx) {
      if (ctx.rank() == 1) throw std::runtime_error("boom");
      ctx.barrier();
    }),
                 std::runtime_error);
    // The abort reset must leave no stale queue entries, barrier counts,
    // or reduce slots behind.
    machine.run([](RankContext& ctx) {
      const double s =
          ctx.allreduce(1.0, [](double a, double b) { return a + b; });
      EXPECT_DOUBLE_EQ(s, 4.0);
      Packet p;
      p.pack(ctx.rank());
      auto all = ctx.allgather(std::move(p));
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)].unpack<int>(), r);
      }
    });
  }
}

TEST(Spmd, ReusableAcrossRuns) {
  Machine machine(4);
  for (int round = 0; round < 3; ++round) {
    machine.run([round](RankContext& ctx) {
      const double s = ctx.allreduce(1.0, [](double a, double b) {
        return a + b;
      });
      EXPECT_DOUBLE_EQ(s, 4.0) << "round " << round;
    });
  }
}

}  // namespace
}  // namespace pigp::runtime
