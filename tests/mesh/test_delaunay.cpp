// Delaunay triangulation: structural validity, empty-circumcircle property
// (parameterized over seeds), Euler relations, incremental insertion.

#include "mesh/delaunay.hpp"

#include <gtest/gtest.h>

#include "mesh/adaptive.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pigp::mesh {
namespace {

std::vector<Point> random_points(int n, std::uint64_t seed) {
  pigp::SplitMix64 rng(seed);
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.next_double(), rng.next_double()});
  }
  return pts;
}

TEST(Delaunay, TriangleOfThreePoints) {
  const std::vector<Point> pts = {{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.8}};
  DelaunayTriangulation dt(pts);
  const TriMesh mesh = dt.snapshot();
  EXPECT_EQ(mesh.num_points(), 3);
  EXPECT_EQ(mesh.num_triangles(), 1);
  mesh.validate();
}

TEST(Delaunay, SquareOfFourPoints) {
  const std::vector<Point> pts = {
      {0.1, 0.1}, {0.9, 0.1}, {0.9, 0.9}, {0.1, 0.85}};
  DelaunayTriangulation dt(pts);
  const TriMesh mesh = dt.snapshot();
  EXPECT_EQ(mesh.num_points(), 4);
  EXPECT_EQ(mesh.num_triangles(), 2);
  EXPECT_EQ(mesh.num_edges(), 5);
  mesh.validate();
}

TEST(Delaunay, PointIdsFollowInsertionOrder) {
  const std::vector<Point> pts = random_points(20, 5);
  DelaunayTriangulation dt(pts);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dt.point(static_cast<PointId>(i)).x,
              pts[static_cast<std::size_t>(i)].x);
  }
  const PointId added = dt.insert({0.5, 0.5001});
  EXPECT_EQ(added, 20);
}

TEST(Delaunay, DuplicateInsertionRejected) {
  const std::vector<Point> pts = {{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.7}};
  DelaunayTriangulation dt(pts);
  EXPECT_THROW(dt.insert({0.2, 0.2}), CheckError);
}

class DelaunayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelaunayProperty, EulerRelationsHold) {
  const int n = 150 + static_cast<int>(GetParam() % 80);
  DelaunayTriangulation dt(random_points(n, GetParam()));
  const TriMesh mesh = dt.snapshot();
  mesh.validate();

  // For a triangulation of a planar point set with h hull vertices:
  // T = 2n - 2 - h and E = 3n - 3 - h.
  const std::int64_t hull = mesh.num_boundary_edges();  // hull edges == h
  EXPECT_EQ(mesh.num_triangles(), 2 * n - 2 - hull);
  EXPECT_EQ(mesh.num_edges(), 3 * n - 3 - hull);
}

TEST_P(DelaunayProperty, EmptyCircumcircles) {
  const int n = 120;
  DelaunayTriangulation dt(random_points(n, GetParam() * 37 + 5));
  const TriMesh mesh = dt.snapshot();

  // No mesh point may lie strictly inside any triangle's circumcircle
  // (within floating-point tolerance).
  for (const Triangle& t : mesh.triangles()) {
    const Point& a = mesh.point(t.vertices[0]);
    const Point& b = mesh.point(t.vertices[1]);
    const Point& c = mesh.point(t.vertices[2]);
    for (PointId p = 0; p < mesh.num_points(); ++p) {
      if (p == t.vertices[0] || p == t.vertices[1] || p == t.vertices[2]) {
        continue;
      }
      EXPECT_LE(incircle(a, b, c, mesh.point(p)), 1e-9)
          << "seed " << GetParam() << " point " << p;
    }
  }
}

TEST_P(DelaunayProperty, IncrementalEqualsBatch) {
  // Inserting points one by one must give the same triangulation as any
  // other insertion order up to Delaunay non-uniqueness; with jittered
  // random points the triangulation is unique, so edge sets must match.
  const std::vector<Point> pts = random_points(80, GetParam() * 911 + 3);
  DelaunayTriangulation all(pts);

  const std::span<const Point> half(pts.data(), 40);
  DelaunayTriangulation incremental(half);
  for (std::size_t i = 40; i < pts.size(); ++i) {
    incremental.insert(pts[i]);
  }
  EXPECT_EQ(all.snapshot().edges(), incremental.snapshot().edges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelaunayProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Delaunay, LocalSpacingReflectsDensity) {
  // A dense cluster plus sparse far field: spacing near the cluster must be
  // much smaller than near the sparse area.
  std::vector<Point> pts = random_points(60, 9);
  pigp::SplitMix64 rng(17);
  for (int i = 0; i < 60; ++i) {
    pts.push_back({0.5 + 0.02 * (rng.next_double() - 0.5),
                   0.5 + 0.02 * (rng.next_double() - 0.5)});
  }
  DelaunayTriangulation dt(pts);
  const double dense = dt.local_spacing({0.5, 0.5});
  EXPECT_LT(dense, 0.05);
}

}  // namespace
}  // namespace pigp::mesh
