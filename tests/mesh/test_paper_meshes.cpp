// Paper workload generators: exact node counts, edge counts near the
// paper's, deltas that round-trip.  Mesh B (10k nodes) is exercised through
// the scaled-down family here to keep test time short; the full-size
// generator runs in the benchmarks.

#include "mesh/paper_meshes.hpp"

#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/delta.hpp"

namespace pigp::mesh {
namespace {

TEST(PaperMeshA, NodeCountsMatchFigure11) {
  const MeshSequence seq = make_paper_mesh_a();
  ASSERT_EQ(seq.graphs.size(), 5u);
  EXPECT_EQ(seq.graphs[0].num_vertices(), 1071);
  EXPECT_EQ(seq.graphs[1].num_vertices(), 1096);
  EXPECT_EQ(seq.graphs[2].num_vertices(), 1121);
  EXPECT_EQ(seq.graphs[3].num_vertices(), 1152);
  EXPECT_EQ(seq.graphs[4].num_vertices(), 1192);
}

TEST(PaperMeshA, EdgeCountsNearFigure11) {
  // Paper: 3185 edges at 1071 nodes, 3548 at 1192.  A Delaunay mesh of a
  // random cloud has E = 3n - 3 - h; h (hull size) is the only wiggle.
  const MeshSequence seq = make_paper_mesh_a();
  EXPECT_NEAR(static_cast<double>(seq.graphs[0].num_edges()), 3185.0, 60.0);
  EXPECT_NEAR(static_cast<double>(seq.graphs[4].num_edges()), 3548.0, 60.0);
}

TEST(PaperMeshA, GraphsAreConnectedMeshes) {
  const MeshSequence seq = make_paper_mesh_a();
  for (const auto& g : seq.graphs) {
    EXPECT_TRUE(graph::is_connected(g));
    g.validate();
  }
  for (const auto& m : seq.meshes) m.validate();
}

TEST(PaperMeshA, DeltasRoundTrip) {
  const MeshSequence seq = make_paper_mesh_a();
  for (std::size_t i = 0; i < seq.deltas.size(); ++i) {
    const auto result = graph::apply_delta(seq.graphs[i], seq.deltas[i]);
    EXPECT_EQ(result.graph, seq.graphs[i + 1]) << "step " << i;
  }
}

TEST(SmallMeshFamily, IndependentDeltasShareBase) {
  const MeshFamily family = make_small_mesh_family(500, {10, 25, 60}, 77);
  ASSERT_EQ(family.refined.size(), 3u);
  EXPECT_EQ(family.base.num_vertices(), 500);
  EXPECT_EQ(family.refined[0].num_vertices(), 510);
  EXPECT_EQ(family.refined[1].num_vertices(), 525);
  EXPECT_EQ(family.refined[2].num_vertices(), 560);
  for (std::size_t i = 0; i < family.deltas.size(); ++i) {
    const auto result = graph::apply_delta(family.base, family.deltas[i]);
    EXPECT_EQ(result.graph, family.refined[i]) << "delta " << i;
  }
}

TEST(SmallMeshSequence, ChainsLikeMeshA) {
  const MeshSequence seq = make_small_mesh_sequence(400, {20, 20}, 5);
  ASSERT_EQ(seq.graphs.size(), 3u);
  EXPECT_EQ(seq.graphs[2].num_vertices(), 440);
  for (std::size_t i = 0; i < seq.deltas.size(); ++i) {
    const auto result = graph::apply_delta(seq.graphs[i], seq.deltas[i]);
    EXPECT_EQ(result.graph, seq.graphs[i + 1]);
  }
}

TEST(SmallMeshFamily, RefinementConcentratesLoad) {
  // The added vertices must cluster: most land within a small disc, which
  // is what makes the incremental load imbalance "severe" (§3).
  const MeshFamily family = make_small_mesh_family(800, {120}, 13);
  const auto& delta = family.deltas[0];
  ASSERT_EQ(delta.added_vertices.size(), 120u);
  // Count neighbors of new vertices that are themselves new: high adjacency
  // among new vertices indicates clustering.
  int new_new_edges = 0;
  const graph::VertexId n_old = family.base.num_vertices();
  for (std::size_t i = 0; i < delta.added_vertices.size(); ++i) {
    for (const auto& [endpoint, w] : delta.added_vertices[i].edges) {
      if (endpoint >= n_old) ++new_new_edges;
    }
  }
  EXPECT_GT(new_new_edges, 120);  // far above what a uniform spread gives
}

}  // namespace
}  // namespace pigp::mesh
