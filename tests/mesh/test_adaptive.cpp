// Adaptive refinement and graph-delta extraction.

#include "mesh/adaptive.hpp"

#include <gtest/gtest.h>

#include "graph/delta.hpp"
#include "support/check.hpp"

namespace pigp::mesh {
namespace {

TEST(AdaptiveMesh, RandomMeshHasRequestedPoints) {
  const AdaptiveMesh mesh = AdaptiveMesh::random(200, 7);
  EXPECT_EQ(mesh.num_points(), 200);
  mesh.snapshot().validate();
}

TEST(AdaptiveMesh, RandomIsDeterministic) {
  const AdaptiveMesh a = AdaptiveMesh::random(150, 3);
  const AdaptiveMesh b = AdaptiveMesh::random(150, 3);
  EXPECT_EQ(a.to_graph(), b.to_graph());
}

TEST(AdaptiveMesh, RefineNearAddsExactCount) {
  AdaptiveMesh mesh = AdaptiveMesh::random(300, 11);
  RefineOptions opt;
  opt.center = {0.4, 0.55};
  opt.radius = 0.07;
  opt.count = 37;
  opt.seed = 5;
  const auto added = mesh.refine_near(opt);
  EXPECT_EQ(added.size(), 37u);
  EXPECT_EQ(mesh.num_points(), 337);
  mesh.snapshot().validate();
}

TEST(AdaptiveMesh, RefinementIsLocalized) {
  AdaptiveMesh mesh = AdaptiveMesh::random(400, 13);
  RefineOptions opt;
  opt.center = {0.3, 0.3};
  opt.radius = 0.05;
  opt.count = 50;
  opt.seed = 2;
  const auto added = mesh.refine_near(opt);
  const TriMesh snap = mesh.snapshot();
  int far_count = 0;
  for (const PointId p : added) {
    if (distance(snap.point(p), {0.3, 0.3}) > 0.3) ++far_count;
  }
  // A Gaussian with sigma 0.05 puts essentially nothing past 6 sigma.
  EXPECT_LE(far_count, 1);
}

TEST(AdaptiveMesh, RefinementKeepsMeshValid) {
  AdaptiveMesh mesh = AdaptiveMesh::random(250, 19);
  for (int round = 0; round < 4; ++round) {
    RefineOptions opt;
    opt.center = {0.6, 0.45};
    opt.radius = 0.06;
    opt.count = 20;
    opt.seed = static_cast<std::uint64_t>(round + 1);
    (void)mesh.refine_near(opt);
    mesh.snapshot().validate();
  }
  EXPECT_EQ(mesh.num_points(), 330);
}

TEST(GraphDeltaExtraction, RoundTripsThroughApplyDelta) {
  AdaptiveMesh mesh = AdaptiveMesh::random(300, 23);
  const graph::Graph before = mesh.to_graph();

  RefineOptions opt;
  opt.center = {0.5, 0.5};
  opt.radius = 0.08;
  opt.count = 40;
  opt.seed = 9;
  (void)mesh.refine_near(opt);
  const graph::Graph after = mesh.to_graph();

  const graph::GraphDelta delta = graph_delta(before, after);
  const graph::DeltaResult result = graph::apply_delta(before, delta);
  EXPECT_EQ(result.graph, after);
  EXPECT_EQ(result.first_new_vertex, before.num_vertices());
}

TEST(GraphDeltaExtraction, RetriangulationRemovesOldEdges) {
  // Inserting into a cavity destroys its interior old-old edges, so the
  // delta must contain removed edges (the paper's E2 set).
  AdaptiveMesh mesh = AdaptiveMesh::random(300, 29);
  const graph::Graph before = mesh.to_graph();
  RefineOptions opt;
  opt.center = {0.5, 0.5};
  opt.radius = 0.05;
  opt.count = 30;
  opt.seed = 4;
  (void)mesh.refine_near(opt);
  const graph::GraphDelta delta = graph_delta(before, mesh.to_graph());
  EXPECT_GT(delta.removed_edges.size(), 0u);
  EXPECT_EQ(delta.added_vertices.size(), 30u);
}

TEST(GraphDeltaExtraction, IdenticalGraphsGiveEmptyDelta) {
  const AdaptiveMesh mesh = AdaptiveMesh::random(100, 31);
  const graph::Graph g = mesh.to_graph();
  const graph::GraphDelta delta = graph_delta(g, g);
  EXPECT_TRUE(delta.added_vertices.empty());
  EXPECT_TRUE(delta.added_edges.empty());
  EXPECT_TRUE(delta.removed_edges.empty());
}

TEST(GraphDeltaExtraction, RejectsShrinkingGraphs) {
  const AdaptiveMesh small = AdaptiveMesh::random(50, 1);
  const AdaptiveMesh large = AdaptiveMesh::random(60, 1);
  EXPECT_THROW((void)graph_delta(large.to_graph(), small.to_graph()),
               CheckError);
}

}  // namespace
}  // namespace pigp::mesh
