#!/usr/bin/env python3
"""Gate the Clang static analyzer (scan-build / analyze-build) on a
committed baseline.

analyze-build writes one plist per diagnosed translation unit into the
results directory.  This script collects every diagnostic as
(checker, src-rooted path, description), compares against the baseline
file, and fails on anything new — so the analyzer job is a ratchet: the
baseline can only shrink.  Baseline entries are matched without line
numbers (unrelated edits move lines); an unmatched baseline entry is a
warning prompting cleanup.

Baseline format, one finding per line:

    <checker-id> <path-suffix>  # justification (required)

Usage: check_scan_build.py <results-dir> <baseline-file>
Exit codes: 0 clean, 1 new findings, 2 usage error.
"""

from __future__ import annotations

import os
import plistlib
import sys


def src_rooted(path):
    """Normalize an absolute analyzer path to a repo-relative suffix."""
    path = path.replace("\\", "/")
    for anchor in ("/src/", "/tests/", "/bench/", "/examples/"):
        idx = path.rfind(anchor)
        if idx >= 0:
            return path[idx + 1 :]
    return os.path.basename(path)


def collect_findings(results_dir):
    findings = []
    for root, _dirs, names in os.walk(results_dir):
        for name in sorted(names):
            if not name.endswith(".plist"):
                continue
            with open(os.path.join(root, name), "rb") as fh:
                try:
                    data = plistlib.load(fh)
                except Exception as exc:
                    print(f"check_scan_build: unreadable plist {name}: {exc}",
                          file=sys.stderr)
                    return None
            files = data.get("files", [])
            for diag in data.get("diagnostics", []):
                file_index = diag.get("location", {}).get("file", 0)
                path = files[file_index] if file_index < len(files) else "?"
                findings.append(
                    (
                        diag.get("check_name")
                        or diag.get("type", "unknown-checker"),
                        src_rooted(path),
                        diag.get("location", {}).get("line", 0),
                        diag.get("description", ""),
                    )
                )
    return findings


def load_baseline(path):
    entries = []
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if "#" not in stripped:
                raise SystemExit(
                    f"{path}:{lineno}: baseline entry without a "
                    "justification comment ('# why')"
                )
            entry = stripped.split("#", 1)[0].split()
            if len(entry) != 2:
                raise SystemExit(
                    f"{path}:{lineno}: expected '<checker-id> <path-suffix> "
                    f"# why', got: {stripped}"
                )
            entries.append((entry[0], entry[1].replace("\\", "/"), lineno))
    return entries


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    results_dir, baseline_path = argv
    if not os.path.isdir(results_dir):
        # analyze-build only creates the directory when it has something to
        # report with some output modes; no directory means a clean run.
        print("check_scan_build: no results directory — analyzer clean")
        return 0

    findings = collect_findings(results_dir)
    if findings is None:
        return 2
    baseline = load_baseline(baseline_path)

    used = set()
    new = []
    for checker, path, line, description in findings:
        match = next(
            (
                b
                for b in baseline
                if b[0] == checker and path.endswith(b[1])
            ),
            None,
        )
        if match:
            used.add(match)
        else:
            new.append((checker, path, line, description))

    for b in baseline:
        if b not in used:
            print(
                f"warning: baseline entry '{b[0]} {b[1]}' (line {b[2]}) no "
                "longer matches anything — retire it?",
                file=sys.stderr,
            )

    if new:
        for checker, path, line, description in new:
            print(f"{path}:{line}: [{checker}] {description}")
        print(
            f"check_scan_build: {len(new)} new analyzer finding(s). Fix "
            "them or add a justified entry to ci/scan_baseline.txt.",
            file=sys.stderr,
        )
        return 1
    print(
        f"check_scan_build: clean "
        f"({len(findings)} finding(s), all baselined)"
        if findings
        else "check_scan_build: clean (0 findings)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
