#!/usr/bin/env python3
"""Docs gate: markdown link/anchor checker + SessionConfig knob coverage.

Scans README.md and every docs/*.md for markdown links and fails when

  * a relative link points at a file that does not exist in the repo, or
  * a ``#fragment`` (same-file or ``other.md#fragment``) names an anchor
    that no heading in the target file produces under GitHub's
    slugification rules (lowercase, drop punctuation, spaces to hyphens,
    ``-1``/``-2`` suffixes for duplicates).

External links (http/https/mailto) are not fetched, and relative targets
that resolve outside the repository (GitHub-web paths like the CI badge's
``../../actions/...``) are skipped, since they have no on-disk referent.
Fenced code blocks and inline code spans are stripped before scanning so
wire-format diagrams cannot masquerade as links.

It also parses the SessionConfig field list out of src/api/config.hpp and
fails when any knob is not documented (as a backticked name) in
docs/CONFIG.md — the documented-contract half of the compile-time
field-count guard in config.cpp: adding a knob without documenting it
breaks CI.

Usage: python3 ci/check_docs.py [repo_root]
"""

import pathlib
import re
import sys

HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+(?:\([^()]*\)[^()\s]*)*)\)")
FENCE_RE = re.compile(r"^(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
FIELD_RE = re.compile(r"^\s*[A-Za-z_][\w:<>,\s]*?\s([a-z_][a-z0-9_]*)\s*(?:=[^;]*)?;")


def github_slug(heading, seen):
    """GitHub's anchor slug for a heading text, tracking duplicates."""
    text = CODE_SPAN_RE.sub(lambda m: m.group(0)[1:-1], heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    slug = "".join(
        ch for ch in text.lower() if ch.isalnum() or ch in " -_"
    ).replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def strip_code(lines):
    """Blank out fenced code blocks and inline code spans."""
    out, in_fence = [], False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else CODE_SPAN_RE.sub("", line))
    return out


def anchors_of(path, cache):
    if path not in cache:
        seen = {}
        slugs = set()
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            match = None if in_fence else HEADING_RE.match(line)
            if match:
                slugs.add(github_slug(match.group(2), seen))
        cache[path] = slugs
    return cache[path]


def check_links(repo, doc, anchor_cache, failures):
    lines = doc.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(strip_code(lines), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1).split('"')[0].strip()
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (doc.parent / path_part).resolve()
                if not resolved.is_relative_to(repo):
                    continue  # GitHub-web relative path (e.g. badge link)
                if not resolved.exists():
                    failures.append(
                        f"{doc.relative_to(repo)}:{lineno}: broken link "
                        f"target {target!r} (no such file)")
                    continue
            else:
                resolved = doc
            if fragment and resolved.suffix == ".md":
                if fragment not in anchors_of(resolved, anchor_cache):
                    failures.append(
                        f"{doc.relative_to(repo)}:{lineno}: broken anchor "
                        f"{target!r} (no heading slugs to "
                        f"#{fragment} in {resolved.name})")


def session_config_fields(config_hpp):
    fields, in_struct, depth = [], False, 0
    for line in config_hpp.read_text(encoding="utf-8").splitlines():
        stripped = line.split("//")[0]
        if not in_struct:
            if re.match(r"^struct SessionConfig\b", stripped):
                in_struct = True
                depth = stripped.count("{") - stripped.count("}")
            continue
        depth += stripped.count("{") - stripped.count("}")
        if depth <= 0:
            break
        if "(" in stripped:  # member functions (resolve) are not knobs
            continue
        match = FIELD_RE.match(stripped)
        if match:
            fields.append(match.group(1))
    return fields


def main():
    repo = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1
        else pathlib.Path(__file__).resolve().parent.parent).resolve()
    docs = [repo / "README.md"] + sorted((repo / "docs").glob("*.md"))
    missing = [d for d in docs if not d.exists()]
    if missing:
        sys.exit(f"check_docs: missing {', '.join(map(str, missing))}")

    failures = []
    anchor_cache = {}
    for doc in docs:
        check_links(repo, doc, anchor_cache, failures)

    fields = session_config_fields(repo / "src" / "api" / "config.hpp")
    if len(fields) < 20:  # the struct has 29 fields; a low count = bad parse
        failures.append(
            f"src/api/config.hpp: parsed only {len(fields)} SessionConfig "
            "fields — check_docs' parser needs updating")
    config_md = (repo / "docs" / "CONFIG.md").read_text(encoding="utf-8")
    for field in fields:
        if f"`{field}`" not in config_md:
            failures.append(
                f"docs/CONFIG.md: SessionConfig knob `{field}` is "
                "undocumented")

    checked = sum(1 for _ in docs)
    if failures:
        print(f"docs gate FAILED ({len(failures)} problem(s) across "
              f"{checked} files):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"docs gate passed: {checked} markdown files, "
          f"{len(fields)} SessionConfig knobs all documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
