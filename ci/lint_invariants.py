#!/usr/bin/env python3
"""Project-invariant linter: concurrency house rules the Clang thread-safety
annotations (src/runtime/sync.hpp) cannot express.

Rules
-----
raw-sync             std::mutex / std::condition_variable / std lock types
                     anywhere in src/ outside runtime/sync.hpp.  All locking
                     goes through the annotated wrappers so -Wthread-safety
                     sees every acquire/release.
atomic-shared-ptr    std::atomic<std::shared_ptr<...>>.  libstdc++
                     synchronizes it through a spin-lock bit ThreadSanitizer
                     cannot see through (the documented ViewChannel hazard);
                     use a sync::Mutex-guarded handoff instead.
blocking-under-lock  A blocking queue/transport call (BoundedQueue
                     push/pop/pop_for, Transport/Machine send/recv/barrier/
                     allreduce/allgather/broadcast, thread join, sleep_for)
                     in a scope that holds a sync::MutexLock.  Capabilities
                     bound short critical sections; blocking calls park the
                     holder and invite lock-order deadlocks.
steady-state-alloc   An explicitly allocating expression (new, make_unique/
                     make_shared, malloc family, std::to_string,
                     std::string(...)) inside a function marked with the
                     `// pigp:steady-state` contract comment.  Amortized
                     container growth (push_back into pooled buffers) is
                     allowed; naked allocations are not.

Engines
-------
The AST engine (libclang via python3-clang) resolves declarations and scopes
precisely and is what CI runs.  When clang.cindex is unavailable or fails —
this repo also builds on plain-GCC boxes — the linter falls back to a
lexical engine: comment/string-stripped source with brace tracking.  Both
engines implement every rule; the negative-compile harness in tests/static/
seeds one violation per rule and asserts whichever engine is active reports
it, so neither can silently rot.  (Rules atomic-shared-ptr and
steady-state-alloc are token-level in both engines on purpose: the marker
comment and the banned type spelling live in the source text, and token
scans see code as written, before macro expansion.)

Suppressions
------------
One finding per line in the suppression file:

    <rule-id> <path-suffix>[:<line>]  # justification (required)

A suppressed finding is reported as suppressed in --verbose mode only; an
unused suppression is a warning, so retired entries get cleaned up.

Exit codes: 0 clean (or every --must-find rule fired), 1 findings (or a
--must-find rule did not fire), 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

RULE_IDS = (
    "raw-sync",
    "atomic-shared-ptr",
    "blocking-under-lock",
    "steady-state-alloc",
)

RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
ATOMIC_SHARED_PTR_RE = re.compile(
    r"\b(?:std\s*::\s*)?atomic\s*<\s*(?:std\s*::\s*)?shared_ptr\b"
)
# Method/function names that block the calling thread.  Matched as calls
# (name immediately followed by an open paren, reached via . or ->, plus the
# free/std forms for join/sleep_for).  Heuristic by name, which is exactly
# the house rule: these names MEAN "may block" in this codebase.
BLOCKING_CALL_RE = re.compile(
    r"(?:\.|->)\s*(push|pop|pop_for|recv|send|barrier|allreduce|allgather|"
    r"broadcast|join)\s*\(|\bsleep_for\s*\("
)
# CondVar waiting under its own mutex is the one legitimate block.
BLOCKING_EXEMPT_RE = re.compile(r"(?:\.|->)\s*(wait|wait_until|notify_\w+)\s*\(")
MUTEX_LOCK_DECL_RE = re.compile(r"\bsync\s*::\s*MutexLock\s+\w+\s*[({]")
STEADY_STATE_MARKER = "pigp:steady-state"
ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()|\bnew\s*\(|"  # new expressions (incl. placement)
    r"\bmake_unique\s*<|\bmake_shared\s*<|"
    r"\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bstrdup\s*\(|"
    r"\bto_string\s*\(|\bstd\s*::\s*string\s*\("
)
SYNC_HPP_SUFFIX = os.path.join("runtime", "sync.hpp")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.suppressed_by = None

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text):
    """Blank out comments, string and char literals, preserving offsets and
    newlines; returns (stripped_code, comments) where comments is a list of
    (line, comment_text)."""
    out = list(text)
    comments = []
    i, n = 0, len(text)
    line = 1

    def blank(a, b):
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            comments.append((line, text[i:j]))
            blank(i, j)
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            comments.append((line, text[i:j]))
            line += text.count("\n", i, j)
            blank(i, j)
            i = j
        elif c == '"':
            # Raw strings: R"delim( ... )delim"
            if i >= 1 and text[i - 1] == "R" and (i < 2 or not text[i - 2].isalnum()):
                m = re.match(r'R"([^ ()\\\t\n]*)\(', text[i - 1 :])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i)
                    j = n if j < 0 else j + len(close)
                    line += text.count("\n", i, j)
                    blank(i, j)
                    i = j
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            blank(i, j)
            i = j
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            blank(i, j)
            i = j
        else:
            i += 1
    return "".join(out), comments


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def enclosing_scope_end(code, pos):
    """End offset of the innermost {...} scope containing pos (or EOF)."""
    depth = 0
    for i in range(pos, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            if depth == 0:
                return i
            depth -= 1
    return len(code)


def matching_brace(code, open_pos):
    depth = 0
    for i in range(open_pos, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code)


# --------------------------------------------------------------- lexical


def lex_raw_sync(path, code, findings):
    if path.replace("\\", "/").endswith("runtime/sync.hpp"):
        return
    for m in RAW_SYNC_RE.finditer(code):
        findings.append(
            Finding(
                "raw-sync",
                path,
                line_of(code, m.start()),
                f"raw std::{m.group(1)} — use the annotated wrappers in "
                "runtime/sync.hpp so -Wthread-safety sees the lock",
            )
        )


def lex_atomic_shared_ptr(path, code, findings):
    for m in ATOMIC_SHARED_PTR_RE.finditer(code):
        findings.append(
            Finding(
                "atomic-shared-ptr",
                path,
                line_of(code, m.start()),
                "std::atomic<std::shared_ptr> synchronizes through a "
                "spin-lock bit TSan cannot see through — use a "
                "sync::Mutex-guarded handoff (see api/view.hpp)",
            )
        )


def lex_blocking_under_lock(path, code, findings):
    for decl in MUTEX_LOCK_DECL_RE.finditer(code):
        scope_end = enclosing_scope_end(code, decl.end())
        held = code[decl.end() : scope_end]
        for m in BLOCKING_CALL_RE.finditer(held):
            name = m.group(1) or "sleep_for"
            findings.append(
                Finding(
                    "blocking-under-lock",
                    path,
                    line_of(code, decl.end() + m.start()),
                    f"blocking call '{name}()' while holding the "
                    f"sync::MutexLock taken at line "
                    f"{line_of(code, decl.start())}",
                )
            )


def lex_steady_state(path, code, comments, findings):
    for cline, ctext in comments:
        if STEADY_STATE_MARKER not in ctext:
            continue
        # The marked function is the next definition: first '{' after the
        # marker opens its body.
        pos = 0
        line = 1
        for i, ch in enumerate(code):
            if line > cline and ch == "{":
                pos = i
                break
            if ch == "\n":
                line += 1
        else:
            continue
        body = code[pos : matching_brace(code, pos) + 1]
        for m in ALLOC_RE.finditer(body):
            findings.append(
                Finding(
                    "steady-state-alloc",
                    path,
                    line_of(code, pos + m.start()),
                    f"allocating expression '{m.group(0).strip()}' in a "
                    f"function marked // pigp:steady-state (line {cline})",
                )
            )


def lex_scan(path, text, findings):
    code, comments = strip_code(text)
    lex_raw_sync(path, code, findings)
    lex_atomic_shared_ptr(path, code, findings)
    lex_blocking_under_lock(path, code, findings)
    lex_steady_state(path, code, comments, findings)


# --------------------------------------------------------------- libclang

BLOCKING_NAMES = {
    "push",
    "pop",
    "pop_for",
    "recv",
    "send",
    "barrier",
    "allreduce",
    "allgather",
    "broadcast",
    "join",
    "sleep_for",
}


def ast_scan(path, text, findings, include_dir):
    """AST engine: rules raw-sync and blocking-under-lock from the libclang
    AST; token-level rules (atomic-shared-ptr, steady-state-alloc) reuse the
    lexical implementation — they are source-text properties by design."""
    import clang.cindex as ci

    index = ci.Index.create()
    tu = index.parse(
        path,
        args=["-x", "c++", "-std=c++20", f"-I{include_dir}"],
        options=ci.TranslationUnit.PARSE_INCOMPLETE,
    )

    is_sync_hpp = path.replace("\\", "/").endswith("runtime/sync.hpp")

    def in_this_file(cursor):
        f = cursor.location.file
        return f is not None and os.path.samefile(f.name, path)

    def walk(cursor, held_since=None):
        """held_since: line at which a sync::MutexLock in the current scope
        chain was declared, or None."""
        for child in cursor.get_children():
            if not in_this_file(child):
                continue
            k = child.kind
            if k in (
                ci.CursorKind.VAR_DECL,
                ci.CursorKind.FIELD_DECL,
                ci.CursorKind.PARM_DECL,
            ):
                spelling = child.type.spelling
                if not is_sync_hpp and RAW_SYNC_RE.search(spelling):
                    findings.append(
                        Finding(
                            "raw-sync",
                            path,
                            child.location.line,
                            f"declaration of type '{spelling}' — use the "
                            "annotated wrappers in runtime/sync.hpp",
                        )
                    )
                if "MutexLock" in spelling and k == ci.CursorKind.VAR_DECL:
                    held_since = child.location.line
            if k == ci.CursorKind.CALL_EXPR and held_since is not None:
                if child.spelling in BLOCKING_NAMES and child.spelling not in (
                    "wait",
                    "wait_until",
                ):
                    findings.append(
                        Finding(
                            "blocking-under-lock",
                            path,
                            child.location.line,
                            f"blocking call '{child.spelling}()' while "
                            f"holding the sync::MutexLock taken at line "
                            f"{held_since}",
                        )
                    )
            # Recursing passes the current holding state down; a MutexLock
            # declared inside a nested scope updates only the recursion's
            # copy of held_since, so it cannot leak past its scope's end.
            walk(child, held_since)

    walk(tu.cursor)

    code, comments = strip_code(text)
    lex_atomic_shared_ptr(path, code, findings)
    lex_steady_state(path, code, comments, findings)


# ------------------------------------------------------------ suppressions


class Suppression:
    def __init__(self, rule, suffix, line, justification, source_line):
        self.rule = rule
        self.suffix = suffix
        self.line = line
        self.justification = justification
        self.source_line = source_line
        self.used = False

    def matches(self, finding):
        if self.rule != finding.rule:
            return False
        if not finding.path.replace("\\", "/").endswith(self.suffix):
            return False
        return self.line is None or self.line == finding.line


def load_suppressions(path):
    out = []
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if "#" not in stripped:
                raise SystemExit(
                    f"{path}:{lineno}: suppression without a justification "
                    "comment ('# why')"
                )
            entry, justification = stripped.split("#", 1)
            parts = entry.split()
            if len(parts) != 2 or parts[0] not in RULE_IDS:
                raise SystemExit(
                    f"{path}:{lineno}: expected '<rule-id> "
                    f"<path-suffix>[:<line>] # why', got: {stripped}"
                )
            rule, target = parts
            line = None
            m = re.match(r"^(.*):(\d+)$", target)
            if m:
                target, line = m.group(1), int(m.group(2))
            out.append(
                Suppression(
                    rule,
                    target.replace("\\", "/"),
                    line,
                    justification.strip(),
                    lineno,
                )
            )
    return out


# -------------------------------------------------------------------- main


def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                        files.append(os.path.join(root, name))
        else:
            files.append(p)
    return files


def main(argv):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: <repo>/src)",
    )
    parser.add_argument(
        "--engine",
        choices=["auto", "libclang", "lex"],
        default="auto",
        help="auto = libclang when importable, lexical fallback otherwise",
    )
    parser.add_argument(
        "--suppressions",
        default=None,
        help="suppression file (default: ci/lint_suppressions.txt if present)",
    )
    parser.add_argument(
        "--must-find",
        default=None,
        help="comma-separated rule ids; exit 0 iff each fired at least once "
        "(self-test mode for the tests/static harness)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    paths = args.paths or [os.path.join(repo_root, "src")]
    include_dir = os.path.join(repo_root, "src")

    suppressions = []
    supp_path = args.suppressions
    if supp_path is None:
        default = os.path.join(repo_root, "ci", "lint_suppressions.txt")
        if os.path.exists(default) and args.must_find is None:
            supp_path = default
    if supp_path:
        suppressions = load_suppressions(supp_path)

    engine = args.engine
    if engine in ("auto", "libclang"):
        try:
            import clang.cindex as ci

            ci.Index.create()
            engine = "libclang"
        except Exception as exc:  # ImportError, LibclangError, ...
            if args.engine == "libclang":
                print(f"lint_invariants: libclang unavailable: {exc}",
                      file=sys.stderr)
                return 2
            engine = "lex"
            if args.verbose:
                print(f"lint_invariants: libclang unavailable ({exc}); "
                      "using the lexical engine", file=sys.stderr)

    findings = []
    for path in gather_files(paths):
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"lint_invariants: cannot read {path}: {exc}",
                  file=sys.stderr)
            return 2
        if engine == "libclang":
            try:
                ast_scan(path, text, findings, include_dir)
                continue
            except Exception as exc:
                # A gate that dies is a gate that gets disabled: degrade to
                # the lexical engine for this file and say so.
                print(
                    f"lint_invariants: libclang failed on {path} ({exc}); "
                    "lexical fallback",
                    file=sys.stderr,
                )
        lex_scan(path, text, findings)

    active = []
    for finding in findings:
        for supp in suppressions:
            if supp.matches(finding):
                finding.suppressed_by = supp
                supp.used = True
                break
        if finding.suppressed_by is None:
            active.append(finding)
        elif args.verbose:
            print(f"suppressed: {finding}  "
                  f"({finding.suppressed_by.justification})")

    for supp in suppressions:
        if not supp.used:
            print(
                f"warning: unused suppression "
                f"'{supp.rule} {supp.suffix}' "
                f"(line {supp.source_line}) — retire it?",
                file=sys.stderr,
            )

    if args.must_find is not None:
        wanted = set(args.must_find.split(","))
        unknown = wanted - set(RULE_IDS)
        if unknown:
            print(f"lint_invariants: unknown rule(s): {sorted(unknown)}",
                  file=sys.stderr)
            return 2
        fired = {f.rule for f in findings}
        missing = wanted - fired
        for finding in active:
            print(f"found: {finding}")
        if missing:
            print(
                f"lint_invariants: expected rule(s) did not fire: "
                f"{sorted(missing)} (engine: {engine})",
                file=sys.stderr,
            )
            return 1
        return 0

    for finding in active:
        print(finding)
    if active:
        print(
            f"lint_invariants: {len(active)} finding(s) (engine: {engine}). "
            "Fix them or add a justified entry to ci/lint_suppressions.txt.",
            file=sys.stderr,
        )
        return 1
    if args.verbose:
        print(f"lint_invariants: clean (engine: {engine})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
