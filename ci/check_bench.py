#!/usr/bin/env python3
"""Perf-regression gate over bench_speedup's machine-readable JSON.

CI regenerates BENCH_streaming.json on every commit (the --smoke run) and
this script compares it against the committed baseline in
bench/baseline/BENCH_streaming.json.  The gate fails when any tracked
throughput metric drops more than --tolerance (default 0.25, i.e. a >25%
drop) below its baseline value, so the streaming numbers PR 3/4/5 fought
for cannot regress silently.

Tracked metrics:
  * sections.session_streaming.policies[*].deltas_per_second
      Absolute throughput per batch policy.  Runner-speed dependent, hence
      the generous tolerance band; recalibrate the baseline (commit a fresh
      smoke JSON) when the CI runner class changes.
  * sections.structural_streaming.rows[*].deltas_per_second
      Throughput of deltas that remove as well as add (edge cuts, vertex
      retirements) per path: the apply_delta full-rebuild oracle, the
      slotted graph's in-place mutators, and the deferred-compaction
      Session.  Runner-speed dependent.
  * sections.structural_streaming.structural_speedup
      mutable deltas/s over rebuild deltas/s — a same-machine ratio of the
      two representations, so it is largely runner-independent and tracks
      the O(Δ)-vs-O(V+E) property itself.
  * sections.concurrent_streaming.deltas_per_second
      Sustained ingest throughput of the AsyncSession while reader threads
      hammer part_of on the published view.  Runner-speed dependent like
      the session_streaming rows.
  * sections.distributed_streaming.transports[*].deltas_per_second
      The same stream through the SPMD backend per transport ("in_process"
      vs real loopback TCP, with and without wire filters).  Gates the
      distributed path's overhead; runner-speed dependent.
  * sections.layering_sweep.points[*].seeded_speedup
      Batch-layering time over boundary-seeded-layering time per dirty
      fraction.  A ratio of two timings on the same machine, so it is
      largely runner-independent and tracks the boundary-locality property
      itself.

Improvements never fail the gate.  Metrics present in the baseline but
missing from the fresh run fail it (a silently dropped section must not
pass).  The tolerance can be overridden with --tolerance or the
PIGP_BENCH_TOLERANCE environment variable for local experiments.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        sys.exit(f"check_bench: cannot read {path}: {error}")


def tracked_metrics(doc):
    """Yield (label, value) for every gated metric in a bench JSON."""
    sections = doc.get("sections", {})
    streaming = sections.get("session_streaming", {})
    for policy in streaming.get("policies", []):
        name = policy.get("policy", "?")
        value = policy.get("deltas_per_second")
        if value is not None:
            yield (f"session_streaming/{name}/deltas_per_second", value)
    structural = sections.get("structural_streaming", {})
    for row in structural.get("rows", []):
        name = row.get("path", "?")
        value = row.get("deltas_per_second")
        if value is not None:
            yield (f"structural_streaming/{name}/deltas_per_second", value)
    value = structural.get("structural_speedup")
    if value is not None:
        yield ("structural_streaming/structural_speedup", value)
    concurrent = sections.get("concurrent_streaming", {})
    value = concurrent.get("deltas_per_second")
    if value is not None:
        yield ("concurrent_streaming/deltas_per_second", value)
    distributed = sections.get("distributed_streaming", {})
    for transport in distributed.get("transports", []):
        name = transport.get("transport", "?")
        value = transport.get("deltas_per_second")
        if value is not None:
            yield (
                f"distributed_streaming/{name}/deltas_per_second", value)
    sweep = sections.get("layering_sweep", {})
    for point in sweep.get("points", []):
        permille = point.get("permille", "?")
        value = point.get("seeded_speedup")
        if value is not None:
            yield (f"layering_sweep/permille={permille}/seeded_speedup", value)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="JSON produced by this CI run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PIGP_BENCH_TOLERANCE", "0.25")),
        help="maximum allowed fractional drop (default 0.25 = 25%%)",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        sys.exit("check_bench: tolerance must be in [0, 1)")

    fresh = dict(tracked_metrics(load(args.fresh)))
    baseline = list(tracked_metrics(load(args.baseline)))
    if not baseline:
        sys.exit("check_bench: baseline contains no tracked metrics")

    failures = []
    width = max(len(label) for label, _ in baseline)
    print(f"perf gate: tolerance {args.tolerance:.0%} drop "
          f"({args.fresh} vs {args.baseline})")
    for label, base_value in baseline:
        fresh_value = fresh.get(label)
        if fresh_value is None:
            failures.append(f"{label}: missing from the fresh run")
            print(f"  FAIL {label:<{width}}  missing from fresh run")
            continue
        floor = base_value * (1.0 - args.tolerance)
        ratio = fresh_value / base_value if base_value > 0 else float("inf")
        verdict = "ok  " if fresh_value >= floor else "FAIL"
        print(f"  {verdict} {label:<{width}}  baseline {base_value:9.3f}"
              f"  fresh {fresh_value:9.3f}  ({ratio:6.2%} of baseline)")
        if fresh_value < floor:
            failures.append(
                f"{label}: {fresh_value:.3f} < floor {floor:.3f} "
                f"(baseline {base_value:.3f})")

    if failures:
        print("\nperf gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        print("\nIf this is an expected machine/workload change, regenerate "
              "the baseline:\n  ./build/bench/bench_speedup --smoke --json "
              "bench/baseline/BENCH_streaming.json")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
