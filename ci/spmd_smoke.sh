#!/usr/bin/env bash
# Two-process localhost SPMD smoke: one pigp_spmd_worker OS process per
# rank over real TCP sockets must (a) balance, (b) produce a partition
# byte-identical to the in-process run of the same protocol, and (c) hold
# only a strict fraction of the graph's adjacency per rank.
#
# Usage: spmd_smoke.sh [path/to/pigp_spmd_worker]
set -euo pipefail

BIN=${1:-build/examples/pigp_spmd_worker}
PARTS=8
N=4000
SEED=9

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BIN" generate "$tmp/g.metis" "$N" "$SEED"

# pid-derived ports keep concurrent CI runs on one host from colliding.
p0=$((10000 + $$ % 40000))
p1=$((p0 + 1))
endpoints="127.0.0.1:${p0},127.0.0.1:${p1}"

# Rank 1 in the background first: its connect to rank 0 must retry until
# rank 0's listener binds, which exercises the any-launch-order path.
"$BIN" worker "$tmp/g.metis" 1 "$PARTS" "$endpoints" --filters=delta \
  > "$tmp/rank1.log" 2>&1 &
rank1_pid=$!

"$BIN" worker "$tmp/g.metis" 0 "$PARTS" "$endpoints" --filters=delta \
  --out="$tmp/tcp.part" | tee "$tmp/rank0.log"
wait "$rank1_pid"
cat "$tmp/rank1.log"

"$BIN" inprocess "$tmp/g.metis" 2 "$PARTS" --out="$tmp/inproc.part" \
  > "$tmp/inproc.log"

cmp "$tmp/tcp.part" "$tmp/inproc.part"
echo "OK: two-process TCP partition byte-identical to the in-process run"

# Memory claim: each rank's resident+halo adjacency is < 90% of the graph.
for log in "$tmp/rank0.log" "$tmp/rank1.log"; do
  awk '/ shard: / {
    if ($4 + $7 >= 0.9 * $10) { print "shard too large: " $0; exit 1 }
    found = 1
  }
  END { if (!found) { print "missing shard report in '"$log"'"; exit 1 } }
  ' "$log"
done
echo "OK: per-rank shards are strict fractions of the graph"
