#!/usr/bin/env bash
# Two-process localhost SPMD smoke: one pigp_spmd_worker OS process per
# rank over real TCP sockets must (a) balance, (b) produce a partition
# byte-identical to the in-process run of the same protocol, and (c) hold
# only a strict fraction of the graph's adjacency per rank.  A final
# kill-a-worker scenario asserts the failure domain: when a peer rank dies,
# the surviving rank must exit promptly with a typed transport error — it
# must never hang.
#
# The whole script re-executes itself under an overall `timeout` guard so a
# regression that *does* hang fails CI with a timeout instead of stalling
# the job, and an EXIT trap kills any background worker still running.
#
# Usage: spmd_smoke.sh [path/to/pigp_spmd_worker]
set -euo pipefail

OVERALL_TIMEOUT_S=300
if [[ -z "${SPMD_SMOKE_GUARDED:-}" ]] && command -v timeout >/dev/null; then
  exec env SPMD_SMOKE_GUARDED=1 timeout --kill-after=10 \
    "$OVERALL_TIMEOUT_S" "$0" "$@"
fi

BIN=${1:-build/examples/pigp_spmd_worker}
PARTS=8
N=4000
SEED=9

tmp=$(mktemp -d)
cleanup() {
  # Kill any worker still running (e.g. a peer orphaned by a failure in
  # the foreground rank) before removing the scratch directory.
  local pids
  pids=$(jobs -p)
  [[ -n "$pids" ]] && kill $pids 2>/dev/null
  wait 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT

"$BIN" generate "$tmp/g.metis" "$N" "$SEED"

# pid-derived ports keep concurrent CI runs on one host from colliding.
p0=$((10000 + $$ % 40000))
p1=$((p0 + 1))
endpoints="127.0.0.1:${p0},127.0.0.1:${p1}"

# Rank 1 in the background first: its connect to rank 0 must retry until
# rank 0's listener binds, which exercises the any-launch-order path.
"$BIN" worker "$tmp/g.metis" 1 "$PARTS" "$endpoints" --filters=delta \
  > "$tmp/rank1.log" 2>&1 &
rank1_pid=$!

"$BIN" worker "$tmp/g.metis" 0 "$PARTS" "$endpoints" --filters=delta \
  --out="$tmp/tcp.part" | tee "$tmp/rank0.log"
wait "$rank1_pid"
cat "$tmp/rank1.log"

"$BIN" inprocess "$tmp/g.metis" 2 "$PARTS" --out="$tmp/inproc.part" \
  > "$tmp/inproc.log"

cmp "$tmp/tcp.part" "$tmp/inproc.part"
echo "OK: two-process TCP partition byte-identical to the in-process run"

# Memory claim: each rank's resident+halo adjacency is < 90% of the graph.
for log in "$tmp/rank0.log" "$tmp/rank1.log"; do
  awk '/ shard: / {
    if ($4 + $7 >= 0.9 * $10) { print "shard too large: " $0; exit 1 }
    found = 1
  }
  END { if (!found) { print "missing shard report in '"$log"'"; exit 1 } }
  ' "$log"
done
echo "OK: per-rank shards are strict fractions of the graph"

# ---- kill-a-worker: the surviving rank must fail promptly and typed ----
#
# Fresh ports (the previous listeners may linger in TIME_WAIT).  Rank 1 is
# started and then killed outright; rank 0 — the survivor — must give up
# within its connect budget with a transport error on stderr, not hang in
# the mesh handshake.  The mesh is connect-to-lower/accept-from-higher, so
# the dead rank 1 leaves rank 0 waiting in accept; a regression that loses
# the accept timeout would hang here (and trip the overall guard).
k0=$((p0 + 2))
k1=$((p0 + 3))
kill_endpoints="127.0.0.1:${k0},127.0.0.1:${k1}"

"$BIN" worker "$tmp/g.metis" 1 "$PARTS" "$kill_endpoints" \
  > "$tmp/kill_rank1.log" 2>&1 &
victim_pid=$!
sleep 0.2          # let it bind and enter its connect-retry loop
kill -9 "$victim_pid" 2>/dev/null
wait "$victim_pid" 2>/dev/null || true

survivor_rc=0
"$BIN" worker "$tmp/g.metis" 0 "$PARTS" "$kill_endpoints" \
  --timeout-ms=2000 --connect-timeout-ms=2000 \
  > "$tmp/kill_rank0.log" 2>&1 || survivor_rc=$?

cat "$tmp/kill_rank0.log"
if [[ "$survivor_rc" -eq 0 ]]; then
  echo "FAIL: surviving rank exited 0 after its peer was killed"
  exit 1
fi
if ! grep -q "pigp_spmd_worker: transport: " "$tmp/kill_rank0.log"; then
  echo "FAIL: surviving rank did not surface a typed transport error"
  exit 1
fi
echo "OK: killed worker surfaced a prompt typed error on the survivor"
