// Minimal external consumer, compiled in CI against the *installed* tree
// with nothing but -I<prefix>/include/pigp and -L<prefix>/lib -lpigp:
//
//   g++ -std=c++20 ci/consumer_main.cpp -Istage/include/pigp \
//       -Lstage/lib -lpigp -fopenmp -pthread
//
// Only the umbrella header is included, so this build breaks the moment
// the public surface grows a dependency that is not reachable (and
// installed) from <pigp.hpp>.

#include <pigp.hpp>

#include <iostream>

int main() {
  using namespace pigp;

  const graph::Graph g = graph::random_geometric_graph(600, 0.06, 3);

  SessionConfig config;
  config.num_parts = 4;
  config.backend = "igpr";
  Session session(config, g);  // initial partition from scratch

  graph::GraphDelta delta;
  for (int i = 0; i < 8; ++i) {
    graph::VertexAddition add;
    add.edges.emplace_back(static_cast<graph::VertexId>(i), 1.0);
    if (i > 0) {
      add.edges.emplace_back(g.num_vertices() + i - 1, 1.0);
    }
    delta.added_vertices.push_back(add);
  }
  const SessionReport report = session.apply(delta);

  std::cout << "consumer ok: backend=" << session.backend_name()
            << " |V|=" << session.graph().num_vertices()
            << " cut=" << report.metrics.cut_total
            << " balanced=" << (report.balanced ? "yes" : "no") << "\n";
  return report.repartitioned && session.graph().num_vertices() == 608 ? 0
                                                                       : 1;
}
