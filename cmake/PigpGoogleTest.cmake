# Provide GTest::gtest_main: prefer FetchContent; fall back to the distro
# source package (/usr/src/googletest on Debian/Ubuntu) so offline builds
# still work.
include(FetchContent)

set(PIGP_GTEST_SOURCE_DIR "/usr/src/googletest" CACHE PATH
  "Local GoogleTest source tree used when downloads are unavailable")

if(EXISTS "${PIGP_GTEST_SOURCE_DIR}/CMakeLists.txt")
  FetchContent_Declare(googletest SOURCE_DIR "${PIGP_GTEST_SOURCE_DIR}")
else()
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip
    URL_HASH SHA256=1f357c27ca988c3f7c6b4bf68a9395005ac6761f034046e9dde0896e3aba00e4
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
endif()

set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)  # MSVC runtime match
FetchContent_MakeAvailable(googletest)
