// Quickstart: the paper's four-step pipeline on a small mesh, narrated.
//
// Mirrors the worked example of Figures 2–9: build an irregular mesh,
// partition it with recursive spectral bisection, refine the mesh in a
// localized area (the incremental change), then walk the four IGP steps —
// initial assignment, layering, LP load balancing, LP refinement — printing
// what each step does.

#include <cstring>
#include <iostream>

#include "core/assign.hpp"
#include "core/layering.hpp"
#include "mesh/adaptive.hpp"
#include "pigp.hpp"
#include "spectral/partitioners.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pigp;
  constexpr graph::PartId kParts = 4;

  // --smoke: a few-hundred-millisecond run for CI; same pipeline, smaller
  // mesh and refinement burst.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int mesh_size = smoke ? 120 : 400;
  const int refine_count = smoke ? 16 : 40;

  // --- the "initial graph" (Figure 2a) ---
  mesh::AdaptiveMesh amesh = mesh::AdaptiveMesh::random(mesh_size, /*seed=*/7);
  const graph::Graph before = amesh.to_graph();
  std::cout << "initial mesh: |V|=" << before.num_vertices()
            << " |E|=" << before.num_edges() << "\n";

  const graph::Partitioning initial =
      spectral::recursive_spectral_bisection(before, kParts);
  const auto m0 = graph::compute_metrics(before, initial);
  std::cout << "RSB partition: cut=" << m0.cut_total
            << " weights max/min=" << m0.max_weight << "/" << m0.min_weight
            << "\n\n";

  // --- the incremental change (Figure 2b: new vertices '*') ---
  mesh::RefineOptions refine;
  refine.center = {0.3, 0.6};
  refine.radius = 0.06;
  refine.count = refine_count;
  refine.seed = 11;
  (void)amesh.refine_near(refine);
  const graph::Graph after = amesh.to_graph();
  std::cout << "after localized refinement: |V|=" << after.num_vertices()
            << " (+" << after.num_vertices() - before.num_vertices()
            << " nodes near (0.3, 0.6))\n\n";

  // --- step 1: assign new vertices to the nearest old partition ---
  const graph::Partitioning assigned =
      core::extend_assignment(after, initial, before.num_vertices());
  {
    const auto m = graph::compute_metrics(after, assigned);
    TextTable table({"partition", "weight", "target"});
    const auto targets =
        graph::balance_targets(after.total_vertex_weight(), kParts);
    for (graph::PartId q = 0; q < kParts; ++q) {
      table.add_row(q, m.weight[static_cast<std::size_t>(q)],
                    targets[static_cast<std::size_t>(q)]);
    }
    std::cout << "step 1 (initial assignment) loads:\n";
    table.print(std::cout);
    std::cout << "(the hotspot partition is overloaded, as in Figure 2b)\n\n";
  }

  // --- step 2: layering (Figure 4) ---
  const core::LayeringResult layering =
      core::layer_partitions(after, assigned);
  {
    std::cout << "step 2 (layering) epsilon matrix — eps(i,j) = vertices of "
                 "partition i closest to partition j:\n";
    TextTable table({"i\\j", "0", "1", "2", "3"});
    for (std::size_t i = 0; i < 4; ++i) {
      table.add_row(i, layering.eps(i, 0), layering.eps(i, 1),
                    layering.eps(i, 2), layering.eps(i, 3));
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // --- steps 3 + 4 via the Session API (Figures 5-9) ---
  SessionConfig config;
  config.num_parts = kParts;
  config.backend = "igpr";  // the full pipeline with LP refinement
  Session session(config, before, initial);
  const SessionReport result =
      session.apply_extended(after, before.num_vertices());

  // summary() reads the session's incrementally maintained totals — O(P),
  // no allocation, no O(V+E) recount — which is the right call for
  // per-batch reporting in streaming loops.
  const graph::PartitionSummary m_final = session.summary();
  std::cout << "step 3 (balance LP): " << result.stages << " stage(s), "
            << (result.balanced ? "balanced" : "NOT balanced") << "\n";
  if (!result.balance.stages.empty()) {
    const auto& stage = result.balance.stages.front();
    std::cout << "  stage 1: alpha=" << stage.alpha
              << " lp_vars=" << stage.lp_variables
              << " lp_rows=" << stage.lp_rows
              << " vertices moved=" << stage.vertices_moved << "\n";
  }
  std::cout << "step 4 (refinement LP): " << result.refine.rounds
            << " round(s), cut " << result.refine.cut_before << " -> "
            << result.refine.cut_after << "\n\n";

  // --- compare with spectral bisection from scratch ---
  const graph::Partitioning scratch =
      spectral::recursive_spectral_bisection(after, kParts);
  const auto m_scratch = graph::compute_metrics(after, scratch);
  TextTable table({"method", "cut", "max weight", "min weight"});
  table.add_row("IGPR (incremental)", m_final.cut_total, m_final.max_weight,
                m_final.min_weight);
  table.add_row("RSB from scratch", m_scratch.cut_total,
                m_scratch.max_weight, m_scratch.min_weight);
  table.print(std::cout);
  std::cout << "\nincremental repartitioning took "
            << result.timings.total * 1e3 << " ms (backend \""
            << session.backend_name() << "\")\n";
  return 0;
}
