// Tour of the LP substrate: building programs with the model API and
// solving them with both simplex implementations.  Ends by reconstructing
// the paper's own Figure 5 load-balancing LP and showing that the solver
// reproduces the printed solution (l03 = 8, l12 = 1, objective 9).

#include <iostream>

#include "lp/bounded_simplex.hpp"
#include "lp/dense_simplex.hpp"
#include "lp/program.hpp"
#include "support/table.hpp"

namespace {

using namespace pigp;

void solve_and_print(const char* title, const lp::LinearProgram& program) {
  std::cout << title << "\n" << program.debug_string();
  for (const bool bounded : {false, true}) {
    const lp::Solution s = bounded ? lp::BoundedSimplex().solve(program)
                                   : lp::DenseSimplex().solve(program);
    std::cout << (bounded ? "  bounded simplex: " : "  dense simplex:   ")
              << lp::to_string(s.status);
    if (s.status == lp::SolveStatus::optimal) {
      std::cout << ", objective " << s.objective << ", x = [";
      for (std::size_t j = 0; j < s.x.size(); ++j) {
        std::cout << (j ? ", " : "") << s.x[j];
      }
      std::cout << "], " << s.iterations << " pivots";
    }
    std::cout << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  // 1. A production-mix maximization with plain <= rows.
  {
    lp::LinearProgram program(lp::Sense::maximize);
    const int x = program.add_variable(3.0, 0.0, lp::kInfinity, "doors");
    const int y = program.add_variable(5.0, 0.0, lp::kInfinity, "windows");
    program.add_row(lp::RowType::less_equal, {{x, 1.0}}, 4.0, "plant1");
    program.add_row(lp::RowType::less_equal, {{y, 2.0}}, 12.0, "plant2");
    program.add_row(lp::RowType::less_equal, {{x, 3.0}, {y, 2.0}}, 18.0,
                    "plant3");
    solve_and_print("1) production mix (Hillier-Lieberman)", program);
  }

  // 2. Diet-style minimization with >= rows (needs phase 1).
  {
    lp::LinearProgram program(lp::Sense::minimize);
    const int x = program.add_variable(0.12, 0.0, lp::kInfinity, "grain");
    const int y = program.add_variable(0.15, 0.0, lp::kInfinity, "meal");
    program.add_row(lp::RowType::greater_equal, {{x, 60.0}, {y, 60.0}},
                    300.0, "protein");
    program.add_row(lp::RowType::greater_equal, {{x, 12.0}, {y, 6.0}}, 36.0,
                    "fat");
    program.add_row(lp::RowType::greater_equal, {{x, 10.0}, {y, 30.0}}, 90.0,
                    "fiber");
    solve_and_print("2) diet problem (two-phase)", program);
  }

  // 3. Box-constrained problem where the bounded-variable solver shines.
  {
    lp::LinearProgram program(lp::Sense::maximize);
    std::vector<std::pair<int, double>> coeffs;
    for (int j = 0; j < 6; ++j) {
      const int v = program.add_variable(1.0 + j, 0.0, 1.0,
                                         "item" + std::to_string(j));
      coeffs.emplace_back(v, 1.0);
    }
    program.add_row(lp::RowType::less_equal, coeffs, 3.0, "knapsack");
    solve_and_print("3) fractional knapsack (all-bound optimum)", program);
  }

  // 4. The paper's Figure 5 LP.
  {
    lp::LinearProgram program(lp::Sense::minimize);
    const char* names[] = {"l01", "l02", "l03", "l10", "l12",
                           "l20", "l21", "l23", "l30", "l32"};
    const double caps[] = {9, 7, 12, 10, 11, 3, 7, 9, 7, 5};
    int v[10];
    for (int j = 0; j < 10; ++j) {
      v[j] = program.add_variable(1.0, 0.0, caps[j], names[j]);
    }
    program.add_row(lp::RowType::equal,
                    {{v[0], 1.0}, {v[1], 1.0}, {v[2], 1.0},
                     {v[3], -1.0}, {v[5], -1.0}, {v[8], -1.0}},
                    8.0, "balance0");
    program.add_row(lp::RowType::equal,
                    {{v[3], 1.0}, {v[4], 1.0}, {v[0], -1.0}, {v[6], -1.0}},
                    1.0, "balance1");
    program.add_row(lp::RowType::equal,
                    {{v[5], 1.0}, {v[6], 1.0}, {v[7], 1.0},
                     {v[1], -1.0}, {v[4], -1.0}, {v[9], -1.0}},
                    -1.0, "balance2");
    program.add_row(lp::RowType::equal,
                    {{v[8], 1.0}, {v[9], 1.0}, {v[2], -1.0}, {v[7], -1.0}},
                    -8.0, "balance3");
    solve_and_print("4) the paper's Figure 5 load-balancing LP "
                    "(expect objective 9: l03=8, l12=1)",
                    program);
  }
  return 0;
}
