// Partitioner shootout: every from-scratch partitioner in the library
// (recursive spectral / coordinate / graph bisection) against the
// incremental repartitioner on the same refined mesh, across partition
// counts.  Reproduces the paper's framing of RSB as "one of the best-known
// methods" (the baseline worth being close to) and shows where the cheap
// geometric/BFS alternatives land.

#include <iostream>
#include <string>

#include "mesh/adaptive.hpp"
#include "pigp.hpp"
#include "runtime/timer.hpp"
#include "spectral/partitioners.hpp"
#include "support/table.hpp"

int main() {
  using namespace pigp;

  mesh::AdaptiveMesh amesh = mesh::AdaptiveMesh::random(2500, /*seed=*/77);
  const graph::Graph before = amesh.to_graph();
  const mesh::TriMesh snapshot = amesh.snapshot();

  mesh::RefineOptions refine;
  refine.center = {0.55, 0.45};
  refine.radius = 0.05;
  refine.count = 200;
  refine.seed = 13;
  (void)amesh.refine_near(refine);
  const graph::Graph after = amesh.to_graph();
  const auto coords = amesh.snapshot().coordinates();

  std::cout << "mesh: " << before.num_vertices() << " -> "
            << after.num_vertices() << " vertices (localized refinement)\n\n";

  for (const graph::PartId parts : {8, 16, 32}) {
    const graph::Partitioning initial =
        spectral::recursive_spectral_bisection(before, parts);

    TextTable table({"P=" + std::to_string(parts), "time (s)", "cut",
                     "max W", "min W", "imbalance"});
    runtime::WallTimer timer;

    const auto report = [&](const char* name,
                            const graph::Partitioning& p, double seconds) {
      const auto m = graph::compute_metrics(after, p);
      table.add_row(name, seconds, m.cut_total, m.max_weight, m.min_weight,
                    m.imbalance);
    };

    timer.reset();
    report("RSB (spectral)",
           spectral::recursive_spectral_bisection(after, parts),
           timer.seconds());

    timer.reset();
    report("RCB (coordinates)",
           spectral::recursive_coordinate_bisection(after, parts, coords),
           timer.seconds());

    timer.reset();
    report("RGB (BFS)", spectral::recursive_graph_bisection(after, parts),
           timer.seconds());

    // The incremental rows run through the Session API: one session per
    // backend, seeded with the pre-refinement partitioning.
    for (const char* backend : {"igp", "igpr"}) {
      SessionConfig config;
      config.num_parts = parts;
      config.backend = backend;
      Session session(config, before, initial);
      timer.reset();
      const SessionReport result =
          session.apply_extended(after, before.num_vertices());
      report(backend == std::string("igp") ? "IGP (incremental)"
                                           : "IGPR (incremental)",
             session.partitioning(), timer.seconds());
      (void)result;
    }

    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
