// Adaptive-computation simulation: the end-to-end scenario that motivates
// the paper (§1) — an adaptive mesh whose computational structure changes
// incrementally between solver phases, with repartitioning after every
// phase.  A moving refinement front (think a shock sweeping across the
// domain) adds nodes epoch after epoch; each epoch we repartition
// incrementally and compare against what a from-scratch RSB would cost.
//
// The table shows the paper's core economics: IGPR's per-epoch cost is a
// tiny fraction of RSB's while the cut stays comparable, so incremental
// repartitioning amortizes even when the mesh changes every few solver
// iterations.

#include <cmath>
#include <iostream>

#include "core/igp.hpp"
#include "graph/partition.hpp"
#include "mesh/adaptive.hpp"
#include "runtime/timer.hpp"
#include "spectral/partitioners.hpp"
#include "support/table.hpp"

int main() {
  using namespace pigp;
  constexpr graph::PartId kParts = 16;
  constexpr int kEpochs = 10;

  mesh::AdaptiveMesh amesh = mesh::AdaptiveMesh::random(3000, /*seed=*/101);
  graph::Graph current = amesh.to_graph();

  runtime::WallTimer timer;
  graph::Partitioning partitioning =
      spectral::recursive_spectral_bisection(current, kParts);
  const double initial_rsb_seconds = timer.seconds();
  std::cout << "initial mesh |V|=" << current.num_vertices() << ", RSB took "
            << initial_rsb_seconds << " s\n\n";

  core::IgpOptions options;
  options.refine = true;
  options.set_threads(4);
  const core::IncrementalPartitioner igp(options);

  TextTable table({"epoch", "|V|", "new", "stages", "IGPR (s)", "RSB (s)",
                   "cut IGPR", "cut RSB", "imbalance"});

  double total_igpr = 0.0;
  double total_rsb = 0.0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    // The refinement front moves along a diagonal arc across the domain.
    const double t = static_cast<double>(epoch) / (kEpochs - 1);
    mesh::RefineOptions refine;
    refine.center = {0.2 + 0.6 * t, 0.3 + 0.4 * std::sin(3.0 * t)};
    refine.radius = 0.05;
    refine.count = 120;
    refine.seed = static_cast<std::uint64_t>(epoch) * 31 + 5;
    (void)amesh.refine_near(refine);

    const graph::VertexId n_old = current.num_vertices();
    const graph::Graph next = amesh.to_graph();

    timer.reset();
    core::IgpResult result = igp.repartition(next, partitioning, n_old);
    const double igpr_seconds = timer.seconds();

    timer.reset();
    const graph::Partitioning scratch =
        spectral::recursive_spectral_bisection(next, kParts);
    const double rsb_seconds = timer.seconds();

    const auto m_igpr = graph::compute_metrics(next, result.partitioning);
    const auto m_rsb = graph::compute_metrics(next, scratch);
    table.add_row(epoch, next.num_vertices(),
                  next.num_vertices() - n_old, result.stages, igpr_seconds,
                  rsb_seconds, m_igpr.cut_total, m_rsb.cut_total,
                  m_igpr.imbalance);

    total_igpr += igpr_seconds;
    total_rsb += rsb_seconds;
    partitioning = std::move(result.partitioning);
    current = next;
  }
  table.print(std::cout);

  std::cout << "\ntotals over " << kEpochs
            << " epochs: IGPR = " << total_igpr << " s, RSB-from-scratch = "
            << total_rsb << " s (" << total_rsb / total_igpr
            << "x more expensive)\n";
  std::cout << "final mesh: |V|=" << current.num_vertices() << "\n";
  return 0;
}
