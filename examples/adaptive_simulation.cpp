// Adaptive-computation simulation: the end-to-end scenario that motivates
// the paper (§1) — an adaptive mesh whose computational structure changes
// incrementally between solver phases, with repartitioning after every
// phase.  A moving refinement front (think a shock sweeping across the
// domain) adds nodes epoch after epoch; the stream is absorbed by one
// stateful pigp::Session and compared against what a from-scratch RSB
// would cost each epoch.
//
// The table shows the paper's core economics: IGPR's per-epoch cost is a
// tiny fraction of RSB's while the cut stays comparable, so incremental
// repartitioning amortizes even when the mesh changes every few solver
// iterations.

#include <cmath>
#include <iostream>

#include "mesh/adaptive.hpp"
#include "pigp.hpp"
#include "runtime/timer.hpp"
#include "spectral/partitioners.hpp"
#include "support/table.hpp"

int main() {
  using namespace pigp;
  constexpr graph::PartId kParts = 16;
  constexpr int kEpochs = 10;

  mesh::AdaptiveMesh amesh = mesh::AdaptiveMesh::random(3000, /*seed=*/101);
  const graph::Graph initial_graph = amesh.to_graph();

  // One session owns the evolving graph + partitioning for the whole run.
  SessionConfig config;
  config.num_parts = kParts;
  config.backend = "igpr";
  config.num_threads = 4;
  config.scratch_method = "rsb";

  runtime::WallTimer timer;
  Session session(config, initial_graph);  // initial RSB partition
  const double initial_rsb_seconds = timer.seconds();
  std::cout << "initial mesh |V|=" << session.graph().num_vertices()
            << ", RSB took " << initial_rsb_seconds << " s\n\n";

  TextTable table({"epoch", "|V|", "new", "stages", "IGPR (s)", "RSB (s)",
                   "cut IGPR", "cut RSB", "imbalance"});

  double total_igpr = 0.0;
  double total_rsb = 0.0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    // The refinement front moves along a diagonal arc across the domain.
    const double t = static_cast<double>(epoch) / (kEpochs - 1);
    mesh::RefineOptions refine;
    refine.center = {0.2 + 0.6 * t, 0.3 + 0.4 * std::sin(3.0 * t)};
    refine.radius = 0.05;
    refine.count = 120;
    refine.seed = static_cast<std::uint64_t>(epoch) * 31 + 5;
    (void)amesh.refine_near(refine);

    const graph::VertexId n_old = session.graph().num_vertices();
    const graph::Graph next = amesh.to_graph();

    const SessionReport report = session.apply_extended(next, n_old);

    timer.reset();
    const graph::Partitioning scratch =
        spectral::recursive_spectral_bisection(session.graph(), kParts);
    const double rsb_seconds = timer.seconds();

    const auto m_rsb = graph::compute_metrics(session.graph(), scratch);
    table.add_row(epoch, session.graph().num_vertices(),
                  session.graph().num_vertices() - n_old, report.stages,
                  report.seconds, rsb_seconds, report.metrics.cut_total,
                  m_rsb.cut_total, report.metrics.imbalance);

    total_igpr += report.seconds;
    total_rsb += rsb_seconds;
  }
  table.print(std::cout);

  std::cout << "\ntotals over " << kEpochs
            << " epochs: IGPR = " << total_igpr << " s, RSB-from-scratch = "
            << total_rsb << " s (" << total_rsb / total_igpr
            << "x more expensive)\n";
  const SessionCounters& counters = session.counters();
  std::cout << "session counters: " << counters.extensions_applied
            << " updates, " << counters.vertices_added << " vertices added, "
            << counters.repartitions << " repartitions, "
            << counters.balance_stages << " balance stages, "
            << counters.lp_iterations << " LP pivots\n";
  std::cout << "final mesh: |V|=" << session.graph().num_vertices() << "\n";
  return 0;
}
