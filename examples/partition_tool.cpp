// Command-line partitioning tool — the adoption path for external users:
//
//   partition_tool [--backend=NAME] <graph.metis> <parts> [method]
//       Partition a METIS-format graph from scratch.
//       method: rsb (default) | rgb | rsb+kl
//       Writes <graph.metis>.part.<parts> next to the input.
//
//   partition_tool [--backend=NAME] <old.metis> <new.metis> <old.part>
//                  [igp|igpr]
//       Incremental mode: `new` extends `old` (its first |V_old| vertices
//       are the old graph's).  Repartitions starting from the partition
//       file and writes <new.metis>.part.<P>.
//
// --backend selects the repartitioning driver from the registry at runtime
// (igp | igpr | multilevel | spmd | scratch); without it, incremental mode
// maps the method argument onto the igp/igpr backends.
//
// With no arguments, runs a self-contained demo on a generated mesh so the
// binary is exercised by the argument-free example loop.

#include <iostream>
#include <string>
#include <vector>

#include "mesh/adaptive.hpp"
#include "pigp.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace pigp;

void report(const graph::Graph& g, const graph::Partitioning& p,
            double seconds) {
  const auto m = graph::compute_metrics(g, p);
  std::cout << "  cut=" << m.cut_total << " (max " << m.cut_max << ", min "
            << m.cut_min << "), weights " << m.min_weight << ".."
            << m.max_weight << " (imbalance " << m.imbalance << "), "
            << seconds << " s\n";
}

int partition_from_scratch(const std::string& path, int parts,
                           const std::string& method) {
  const graph::Graph g = graph::load_metis_file(path);
  std::cout << "loaded " << path << ": |V|=" << g.num_vertices()
            << " |E|=" << g.num_edges() << "\n";
  SessionConfig config;
  config.num_parts = static_cast<graph::PartId>(parts);
  config.backend = "scratch";
  config.scratch_method = method;
  runtime::WallTimer timer;
  const Session session(config, g);
  const double seconds = timer.seconds();
  std::cout << method << " partitioning into " << parts << " parts:\n";
  report(session.graph(), session.partitioning(), seconds);
  const std::string out = path + ".part." + std::to_string(parts);
  graph::save_partition_file(session.partitioning(), out);
  std::cout << "wrote " << out << "\n";
  return 0;
}

int partition_incremental(const std::string& old_path,
                          const std::string& new_path,
                          const std::string& part_path,
                          const std::string& backend) {
  const graph::Graph g_old = graph::load_metis_file(old_path);
  const graph::Graph g_new = graph::load_metis_file(new_path);
  graph::Partitioning old_p = graph::load_partition_file(part_path);
  PIGP_CHECK(old_p.num_vertices() == g_old.num_vertices(),
             "partition file does not match the old graph");
  PIGP_CHECK(g_new.num_vertices() >= g_old.num_vertices(),
             "new graph must extend the old graph");

  SessionConfig config;
  config.num_parts = old_p.num_parts;
  config.backend = backend;
  Session session(config, g_old, std::move(old_p));
  runtime::WallTimer timer;
  const SessionReport result =
      session.apply_extended(g_new, g_old.num_vertices());
  const double seconds = timer.seconds();
  std::cout << backend << " repartitioning (" << result.stages
            << " balance stage(s)):\n";
  report(session.graph(), session.partitioning(), seconds);
  const std::string out =
      new_path + ".part." + std::to_string(session.config().num_parts);
  graph::save_partition_file(session.partitioning(), out);
  std::cout << "wrote " << out << "\n";
  return 0;
}

int demo(const std::string& backend) {
  std::cout << "no arguments: running the built-in demo (backend \""
            << backend << "\")\n"
            << "usage:\n"
            << "  partition_tool [--backend=NAME] <graph.metis> <parts> "
               "[rsb|rgb|rsb+kl]\n"
            << "  partition_tool [--backend=NAME] <old.metis> <new.metis> "
               "<old.part> [igp|igpr]\n"
            << "backends:";
  for (const std::string& name : BackendRegistry::global().names()) {
    std::cout << ' ' << name;
  }
  std::cout << "\n\n";

  mesh::AdaptiveMesh amesh = mesh::AdaptiveMesh::random(1500, 3);
  const graph::Graph before = amesh.to_graph();

  SessionConfig config;
  config.num_parts = 8;
  config.backend = backend;
  Session session(config, before);  // initial RSB partition
  std::cout << "demo mesh |V|=" << before.num_vertices() << ", RSB:\n";
  report(session.graph(), session.partitioning(), 0.0);

  mesh::RefineOptions refine;
  refine.center = {0.4, 0.5};
  refine.radius = 0.05;
  refine.count = 120;
  refine.seed = 5;
  (void)amesh.refine_near(refine);
  const graph::Graph after = amesh.to_graph();

  const SessionReport result =
      session.apply_extended(after, before.num_vertices());
  std::cout << "after +" << after.num_vertices() - before.num_vertices()
            << " nodes, backend \"" << session.backend_name() << "\":\n";
  report(session.graph(), session.partitioning(), result.seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Peel off --backend=NAME wherever it appears.
    std::string backend_flag;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--backend=", 0) == 0) {
        backend_flag = arg.substr(std::string("--backend=").size());
      } else {
        args.push_back(arg);
      }
    }

    if (args.empty()) {
      return demo(backend_flag.empty() ? "igpr" : backend_flag);
    }
    // From-scratch mode iff the second positional is a part count; any
    // other 3-argument form is incremental (old, new, part-file).
    const auto is_integer = [](const std::string& s) {
      return !s.empty() &&
             s.find_first_not_of("0123456789") == std::string::npos;
    };
    if (args.size() >= 2 && args.size() <= 3 && is_integer(args[1])) {
      if (!backend_flag.empty() && backend_flag != "scratch") {
        std::cerr << "error: from-scratch mode always uses the scratch "
                     "backend; pick the algorithm with the method argument "
                     "(rsb|rgb|rsb+kl), not --backend=" << backend_flag
                  << "\n";
        return 2;
      }
      return partition_from_scratch(args[0], std::stoi(args[1]),
                                    args.size() == 3 ? args[2] : "rsb");
    }
    if (args.size() >= 3 && args.size() <= 4) {
      // The positional method maps onto the igp/igpr backends; --backend
      // overrides it with any registered name.
      const std::string method = args.size() == 4 ? args[3] : "igpr";
      const std::string backend =
          backend_flag.empty() ? method : backend_flag;
      return partition_incremental(args[0], args[1], args[2], backend);
    }
    std::cerr << "bad arguments; run without arguments for usage\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
