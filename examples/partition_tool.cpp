// Command-line partitioning tool — the adoption path for external users:
//
//   partition_tool <graph.metis> <parts> [method]
//       Partition a METIS-format graph from scratch.
//       method: rsb (default) | rgb | rsb+kl
//       Writes <graph.metis>.part.<parts> next to the input.
//
//   partition_tool <old.metis> <new.metis> <old.part> [igp|igpr]
//       Incremental mode: `new` extends `old` (its first |V_old| vertices
//       are the old graph's).  Repartitions with IGP/IGPR starting from
//       the partition file and writes <new.metis>.part.<P>.
//
// With no arguments, runs a self-contained demo on a generated mesh so the
// binary is exercised by the argument-free example loop.

#include <iostream>
#include <string>

#include "core/igp.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "mesh/adaptive.hpp"
#include "runtime/timer.hpp"
#include "spectral/kernighan_lin.hpp"
#include "spectral/partitioners.hpp"

namespace {

using namespace pigp;

void report(const graph::Graph& g, const graph::Partitioning& p,
            double seconds) {
  const auto m = graph::compute_metrics(g, p);
  std::cout << "  cut=" << m.cut_total << " (max " << m.cut_max << ", min "
            << m.cut_min << "), weights " << m.min_weight << ".."
            << m.max_weight << " (imbalance " << m.imbalance << "), "
            << seconds << " s\n";
}

int partition_from_scratch(const std::string& path, int parts,
                           const std::string& method) {
  const graph::Graph g = graph::load_metis_file(path);
  std::cout << "loaded " << path << ": |V|=" << g.num_vertices()
            << " |E|=" << g.num_edges() << "\n";
  runtime::WallTimer timer;
  graph::Partitioning p;
  if (method == "rgb") {
    p = spectral::recursive_graph_bisection(g, parts);
  } else {
    p = spectral::recursive_spectral_bisection(g, parts);
  }
  if (method == "rsb+kl") {
    (void)spectral::kernighan_lin_refine(g, p);
  }
  const double seconds = timer.seconds();
  std::cout << method << " partitioning into " << parts << " parts:\n";
  report(g, p, seconds);
  const std::string out = path + ".part." + std::to_string(parts);
  graph::save_partition_file(p, out);
  std::cout << "wrote " << out << "\n";
  return 0;
}

int partition_incremental(const std::string& old_path,
                          const std::string& new_path,
                          const std::string& part_path,
                          const std::string& method) {
  const graph::Graph g_old = graph::load_metis_file(old_path);
  const graph::Graph g_new = graph::load_metis_file(new_path);
  graph::Partitioning old_p = graph::load_partition_file(part_path);
  PIGP_CHECK(old_p.num_vertices() == g_old.num_vertices(),
             "partition file does not match the old graph");
  PIGP_CHECK(g_new.num_vertices() >= g_old.num_vertices(),
             "new graph must extend the old graph");

  core::IgpOptions options;
  options.refine = method != "igp";
  const core::IncrementalPartitioner igp(options);
  runtime::WallTimer timer;
  core::IgpResult result =
      igp.repartition(g_new, old_p, g_old.num_vertices());
  const double seconds = timer.seconds();
  std::cout << (options.refine ? "IGPR" : "IGP") << " repartitioning ("
            << result.stages << " balance stage(s)):\n";
  report(g_new, result.partitioning, seconds);
  const std::string out =
      new_path + ".part." + std::to_string(old_p.num_parts);
  graph::save_partition_file(result.partitioning, out);
  std::cout << "wrote " << out << "\n";
  return 0;
}

int demo() {
  std::cout << "no arguments: running the built-in demo\n"
            << "usage:\n"
            << "  partition_tool <graph.metis> <parts> [rsb|rgb|rsb+kl]\n"
            << "  partition_tool <old.metis> <new.metis> <old.part> "
               "[igp|igpr]\n\n";
  mesh::AdaptiveMesh amesh = mesh::AdaptiveMesh::random(1500, 3);
  const graph::Graph before = amesh.to_graph();
  const graph::Partitioning initial =
      spectral::recursive_spectral_bisection(before, 8);
  std::cout << "demo mesh |V|=" << before.num_vertices() << ", RSB:\n";
  report(before, initial, 0.0);

  mesh::RefineOptions refine;
  refine.center = {0.4, 0.5};
  refine.radius = 0.05;
  refine.count = 120;
  refine.seed = 5;
  (void)amesh.refine_near(refine);
  const graph::Graph after = amesh.to_graph();

  const core::IncrementalPartitioner igp;
  runtime::WallTimer timer;
  core::IgpResult result =
      igp.repartition(after, initial, before.num_vertices());
  std::cout << "after +120 nodes, IGPR:\n";
  report(after, result.partitioning, timer.seconds());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 1) return demo();
    if (argc >= 3 && argc <= 4 && std::string(argv[2]).find('.') ==
                                      std::string::npos) {
      return partition_from_scratch(argv[1], std::stoi(argv[2]),
                                    argc == 4 ? argv[3] : "rsb");
    }
    if (argc >= 4 && argc <= 5) {
      return partition_incremental(argv[1], argv[2], argv[3],
                                   argc == 5 ? argv[4] : "igpr");
    }
    std::cerr << "bad arguments; run without arguments for usage\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
