// Multi-process SPMD worker launcher — the deployment shape of the
// distributed engine: one OS process per rank, each loading only its
// key-range shard of the graph and speaking the TCP wire protocol.
//
//   pigp_spmd_worker generate <out.metis> [n] [seed]
//       Write a generated test mesh in METIS format.
//
//   pigp_spmd_worker worker <graph.metis> <rank> <parts>
//                    <host:port,host:port,...> [options]
//       Run one worker rank.  The rank count is the endpoint count; every
//       process must pass the same endpoint list, parts, and options.
//       Each rank streams only its shard of the file (peak graph memory
//       O(V + E/ranks + boundary)), rebalances with its peers, and rank 0
//       writes <graph.metis>.part.<parts>.
//       Options: --filters=delta[,zlib]  wire filter chain
//                --skew=K                initial key-range imbalance (def 1)
//                --timeout-ms=T          send/recv timeout (default 30000)
//                --connect-timeout-ms=T  mesh-establishment budget
//                                        (default 10000)
//                --out=PATH              partition output (rank 0)
//
//   pigp_spmd_worker inprocess <graph.metis> <ranks> <parts> [options]
//       The same sharded worker protocol on in-process ranks — the parity
//       oracle: its partition file must be byte-identical to a TCP run
//       with the same inputs.  Options: --skew, --out.
//
// With no arguments, runs a self-contained two-rank demo over loopback
// TCP and checks it against the in-process oracle.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/spmd_igp.hpp"
#include "core/spmd_worker.hpp"
#include "graph/io.hpp"
#include "graph/shard.hpp"
#include "mesh/paper_meshes.hpp"
#include "runtime/net/tcp_transport.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace pigp;

/// Vertex count from a METIS header without loading the graph.
graph::VertexId read_metis_vertex_count(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream header(line);
    long long n = 0;
    header >> n;
    return static_cast<graph::VertexId>(n);
  }
  throw std::runtime_error(path + ": missing METIS header");
}

std::vector<net::TcpEndpoint> parse_endpoints(const std::string& spec) {
  std::vector<net::TcpEndpoint> endpoints;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    const std::size_t colon = item.rfind(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("endpoint '" + item + "' is not host:port");
    }
    net::TcpEndpoint ep;
    ep.host = item.substr(0, colon);
    ep.port = static_cast<std::uint16_t>(std::stoi(item.substr(colon + 1)));
    endpoints.push_back(std::move(ep));
  }
  return endpoints;
}

struct Flags {
  std::string filters;
  std::string out;
  double skew = 1.0;
  int timeout_ms = 30000;
  int connect_timeout_ms = 10000;
};

Flags parse_flags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--filters=", 0) == 0) {
      flags.filters = value("--filters=");
    } else if (arg.rfind("--skew=", 0) == 0) {
      flags.skew = std::stod(value("--skew="));
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      flags.timeout_ms = std::stoi(value("--timeout-ms="));
    } else if (arg.rfind("--connect-timeout-ms=", 0) == 0) {
      flags.connect_timeout_ms = std::stoi(value("--connect-timeout-ms="));
    } else if (arg.rfind("--out=", 0) == 0) {
      flags.out = value("--out=");
    } else {
      throw std::runtime_error("unknown option " + arg);
    }
  }
  return flags;
}

core::IgpOptions worker_options() {
  core::IgpOptions options;
  options.refine = false;  // the sharded worker is balance-only
  return options;
}

void report_shard(const graph::GraphShard& shard) {
  std::cout << "[rank " << shard.rank << "] shard: "
            << shard.resident_half_edges << " resident + "
            << shard.halo_half_edges << " halo of "
            << shard.total_half_edges << " half-edges ("
            << (100.0 *
                static_cast<double>(shard.resident_half_edges +
                                    shard.halo_half_edges) /
                static_cast<double>(shard.total_half_edges))
            << "% of the graph)\n";
}

void report_result(int rank, const core::SpmdWorkerStats& stats,
                   double seconds) {
  std::cout << "[rank " << rank << "] "
            << (stats.balanced ? "balanced" : "NOT balanced") << " in "
            << stats.stages << " stage(s), cut=" << stats.cut << ", moved "
            << stats.vertices_moved << " vertices / " << stats.rows_migrated
            << " adjacency rows, " << seconds << " s\n";
}

int run_generate(int argc, char** argv) {
  const std::string path = argv[2];
  const graph::VertexId n =
      argc > 3 ? static_cast<graph::VertexId>(std::stoll(argv[3])) : 3000;
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::stoull(argv[4])) : 42;
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(n, {}, seed);
  graph::save_metis_file(seq.graphs[0], path);
  std::cout << "wrote " << path << ": |V|=" << seq.graphs[0].num_vertices()
            << " |E|=" << seq.graphs[0].num_edges() << "\n";
  return 0;
}

int run_worker(int argc, char** argv) {
  const std::string path = argv[2];
  const int rank = std::stoi(argv[3]);
  const graph::PartId parts = static_cast<graph::PartId>(std::stoi(argv[4]));
  const std::vector<net::TcpEndpoint> endpoints = parse_endpoints(argv[5]);
  const Flags flags = parse_flags(argc, argv, 6);
  const int ranks = static_cast<int>(endpoints.size());

  const graph::VertexId n = read_metis_vertex_count(path);
  const graph::Partitioning initial =
      graph::contiguous_partitioning(n, parts, flags.skew);
  graph::GraphShard shard = graph::load_shard_file(path, initial, rank, ranks);
  report_shard(shard);

  net::TcpOptions tcp;
  tcp.filters = flags.filters;
  tcp.send_timeout_ms = flags.timeout_ms;
  tcp.recv_timeout_ms = flags.timeout_ms;
  tcp.connect_timeout_ms = flags.connect_timeout_ms;
  net::TcpTransport transport(rank, endpoints, tcp);

  runtime::WallTimer timer;
  const core::SpmdWorkerStats stats =
      core::spmd_worker_rebalance(transport, shard, worker_options());
  report_result(rank, stats, timer.seconds());
  std::cout << "[rank " << rank << "] wire: " << transport.bytes_sent()
            << " B sent, " << transport.bytes_received() << " B received\n";

  if (rank == 0) {
    const std::string out = flags.out.empty()
                                ? path + ".part." + std::to_string(parts)
                                : flags.out;
    graph::save_partition_file(shard.partitioning, out);
    std::cout << "[rank 0] wrote " << out << "\n";
  }
  return stats.balanced ? 0 : 2;
}

int run_inprocess(int argc, char** argv) {
  const std::string path = argv[2];
  const int ranks = std::stoi(argv[3]);
  const graph::PartId parts = static_cast<graph::PartId>(std::stoi(argv[4]));
  const Flags flags = parse_flags(argc, argv, 5);

  const graph::VertexId n = read_metis_vertex_count(path);
  const graph::Partitioning initial =
      graph::contiguous_partitioning(n, parts, flags.skew);
  std::vector<graph::GraphShard> shards;
  shards.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    shards.push_back(graph::load_shard_file(path, initial, r, ranks));
    report_shard(shards.back());
  }

  runtime::WallTimer timer;
  std::vector<core::SpmdWorkerStats> stats(static_cast<std::size_t>(ranks));
  core::MachineExecutor executor(ranks);
  executor.run([&](net::Transport& t) {
    stats[static_cast<std::size_t>(t.rank())] = core::spmd_worker_rebalance(
        t, shards[static_cast<std::size_t>(t.rank())], worker_options());
  });
  report_result(0, stats[0], timer.seconds());

  const std::string out = flags.out.empty()
                              ? path + ".part." + std::to_string(parts)
                              : flags.out;
  graph::save_partition_file(shards[0].partitioning, out);
  std::cout << "wrote " << out << "\n";
  return stats[0].balanced ? 0 : 2;
}

int run_demo() {
  std::cout << "demo: 2 ranks over loopback TCP vs the in-process oracle\n";
  const mesh::MeshSequence seq = mesh::make_small_mesh_sequence(1200, {}, 7);
  const graph::Graph& g = seq.graphs[0];
  const graph::Partitioning initial =
      graph::contiguous_partitioning(g.num_vertices(), 6, 1.0);

  const auto run = [&](core::SpmdExecutor& executor) {
    std::vector<graph::GraphShard> shards;
    for (int r = 0; r < executor.num_ranks(); ++r) {
      shards.push_back(graph::make_shard(g, initial, r, executor.num_ranks()));
    }
    std::vector<core::SpmdWorkerStats> stats(
        static_cast<std::size_t>(executor.num_ranks()));
    executor.run([&](net::Transport& t) {
      stats[static_cast<std::size_t>(t.rank())] = core::spmd_worker_rebalance(
          t, shards[static_cast<std::size_t>(t.rank())], worker_options());
    });
    report_shard(shards[0]);
    report_result(0, stats[0], 0.0);
    return shards[0].partitioning;
  };

  core::MachineExecutor in_process(2);
  const graph::Partitioning expected = run(in_process);

  net::TcpOptions tcp;
  tcp.filters = "delta";
  core::TcpLoopbackExecutor loopback(2, tcp);
  const graph::Partitioning actual = run(loopback);

  if (expected.part != actual.part) {
    std::cout << "FAIL: TCP result diverged from the in-process oracle\n";
    return 1;
  }
  std::cout << "OK: TCP run bit-identical to the in-process oracle\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return run_demo();
    const std::string mode = argv[1];
    if (mode == "generate" && argc >= 3) return run_generate(argc, argv);
    if (mode == "worker" && argc >= 6) return run_worker(argc, argv);
    if (mode == "inprocess" && argc >= 5) return run_inprocess(argc, argv);
    std::cerr << "usage:\n"
              << "  pigp_spmd_worker generate <out.metis> [n] [seed]\n"
              << "  pigp_spmd_worker worker <graph.metis> <rank> <parts> "
                 "<host:port,...> [--filters=F] [--skew=K] "
                 "[--timeout-ms=T] [--connect-timeout-ms=T] [--out=PATH]\n"
              << "  pigp_spmd_worker inprocess <graph.metis> <ranks> "
                 "<parts> [--skew=K] [--out=PATH]\n"
              << "  pigp_spmd_worker            (loopback demo)\n";
    return 64;
  } catch (const std::exception& e) {
    std::cerr << "pigp_spmd_worker: " << e.what() << "\n";
    return 1;
  }
}
