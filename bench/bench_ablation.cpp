// Ablation study over the design choices DESIGN.md calls out:
//
//  A. LP solver representation: dense two-phase simplex (the paper's
//     implementation) vs bounded-variable simplex (the paper's stated
//     future-work improvement) — time per full IGPR run and LP pivots.
//  B. Refinement policy: paper default (non-strict rounds then strict)
//     vs strict-from-the-start vs a single round.
//  C. Alpha staging: doubling search (reproduced behaviour) vs forcing
//     one-shot alpha = 1 with best-effort fallback only.
//
// Run on the mesh-A sequence at 32 partitions; prints paper-style tables.

#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "core/multilevel.hpp"
#include "spectral/kernighan_lin.hpp"
#include "mesh/paper_meshes.hpp"

namespace {

using namespace pigp;
using bench::kPaperPartitions;

struct AblationOutcome {
  double seconds = 0.0;
  double cut = 0.0;
  double stages = 0.0;
  std::int64_t lp_iterations = 0;
};

AblationOutcome run_variant(const mesh::MeshSequence& seq,
                            const graph::Partitioning& initial,
                            const core::IgpOptions& options) {
  AblationOutcome out;
  graph::Partitioning current = initial;
  const core::IncrementalPartitioner igp(options);
  for (std::size_t step = 1; step < seq.graphs.size(); ++step) {
    runtime::WallTimer timer;
    core::IgpResult result = igp.repartition(
        seq.graphs[step], current, seq.graphs[step - 1].num_vertices());
    out.seconds += timer.seconds();
    out.stages += result.stages;
    out.lp_iterations += result.refine_stats.lp_iterations;
    for (const auto& stage : result.balance_result.stages) {
      out.lp_iterations += stage.lp_iterations;
    }
    current = std::move(result.partitioning);
  }
  out.cut = graph::compute_metrics(seq.graphs.back(), current).cut_total;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: seconds-scale CI run — fewer partitions, one increment, and
  // the expensive mesh-B section D skipped.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const graph::PartId parts = smoke ? 8 : kPaperPartitions;

  mesh::MeshSequence seq = mesh::make_paper_mesh_a();
  if (smoke && seq.graphs.size() > 2) {
    seq.graphs.resize(2);  // one increment is enough to rot-check the paths
  }
  std::cout << "=== Ablations on mesh A, P = " << parts << " ("
            << seq.graphs.size() - 1 << " chained increment(s)"
            << (smoke ? ", smoke" : "") << ") ===\n\n";
  const graph::Partitioning initial =
      spectral::recursive_spectral_bisection(seq.graphs[0], parts);

  // ------------------------------------------------ A: solver choice
  {
    TextTable table({"solver", "time (s)", "final cut", "LP pivots"});
    for (const auto kind :
         {core::LpSolverKind::dense, core::LpSolverKind::bounded}) {
      const core::IgpOptions options =
          bench::make_igp_options(parts, /*refine=*/true, /*threads=*/1, kind);
      const AblationOutcome out = run_variant(seq, initial, options);
      table.add_row(kind == core::LpSolverKind::dense
                        ? "dense simplex (paper)"
                        : "bounded-variable simplex",
                    out.seconds, out.cut, out.lp_iterations);
    }
    std::cout << "A. LP solver representation\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  // ------------------------------------------------ B: refinement policy
  {
    TextTable table({"refinement policy", "time (s)", "final cut"});
    struct Policy {
      const char* name;
      int max_rounds;
      int strict_after;
    };
    for (const Policy policy :
         {Policy{"paper default (strict after 2)", 8, 2},
          Policy{"strict from round 0", 8, 0},
          Policy{"single round", 1, 2},
          Policy{"no refinement (IGP)", 0, 0}}) {
      core::IgpOptions options;
      options.refine = policy.max_rounds > 0;
      options.refinement.max_rounds = policy.max_rounds;
      options.refinement.strict_after_round = policy.strict_after;
      const AblationOutcome out = run_variant(seq, initial, options);
      table.add_row(policy.name, out.seconds, out.cut);
    }
    std::cout << "B. Refinement policy\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  // ------------------------------------------------ B2: LP vs KL refinement
  {
    // The paper's LP refinement against the classic mincut local search its
    // introduction cites.  Run both as a post-pass on the plain IGP output
    // of the final mesh step.
    core::IgpOptions plain;
    plain.refine = false;
    graph::Partitioning current = initial;
    const core::IncrementalPartitioner igp(plain);
    for (std::size_t step = 1; step < seq.graphs.size(); ++step) {
      current = igp.repartition(seq.graphs[step], current,
                                seq.graphs[step - 1].num_vertices())
                    .partitioning;
    }
    const graph::Graph& g = seq.graphs.back();
    const double base_cut = graph::compute_metrics(g, current).cut_total;

    TextTable table({"post-pass on IGP output", "time (s)", "final cut"});
    table.add_row("none", 0.0, base_cut);
    {
      graph::Partitioning p = current;
      runtime::WallTimer timer;
      (void)core::refine_partitioning(g, p);
      table.add_row("LP refinement (paper step 4)", timer.seconds(),
                    graph::compute_metrics(g, p).cut_total);
    }
    {
      graph::Partitioning p = current;
      runtime::WallTimer timer;
      (void)spectral::kernighan_lin_refine(g, p);
      table.add_row("Kernighan-Lin pairwise", timer.seconds(),
                    graph::compute_metrics(g, p).cut_total);
    }
    {
      graph::Partitioning p = current;
      runtime::WallTimer timer;
      (void)core::refine_partitioning(g, p);
      (void)spectral::kernighan_lin_refine(g, p);
      table.add_row("LP then KL", timer.seconds(),
                    graph::compute_metrics(g, p).cut_total);
    }
    std::cout << "B2. LP refinement vs Kernighan-Lin\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  // ------------------------------------------------ C: alpha staging
  {
    TextTable table(
        {"staging policy", "time (s)", "final cut", "total stages"});
    for (const double alpha_max : {64.0, 1.0}) {
      core::IgpOptions options;
      options.balance.alpha_max = alpha_max;
      const AblationOutcome out = run_variant(seq, initial, options);
      table.add_row(alpha_max > 1.0 ? "alpha doubling (paper)"
                                    : "alpha = 1 + best-effort only",
                    out.seconds, out.cut, out.stages);
    }
    std::cout << "C. Alpha staging policy\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  // ------------------------------------------------ D: flat vs multilevel
  if (!smoke) {
    // The paper's §3 future-work extension: apply incremental partitioning
    // recursively through a coarsening hierarchy.  Compare on the large
    // mesh-B workload where coarsening has something to save.
    const mesh::MeshFamily family = mesh::make_paper_mesh_b();
    const graph::Partitioning base_part =
        spectral::recursive_spectral_bisection(family.base,
                                               kPaperPartitions);
    const graph::Graph& g = family.refined.back();
    const graph::VertexId n_old = family.base.num_vertices();

    TextTable table({"driver (mesh B +672)", "time (s)", "cut", "balanced"});
    {
      runtime::WallTimer timer;
      const core::IgpResult flat = core::IncrementalPartitioner().repartition(
          g, base_part, n_old);
      table.add_row("flat IGPR (paper)", timer.seconds(),
                    graph::compute_metrics(g, flat.partitioning).cut_total,
                    flat.balanced ? "yes" : "no");
    }
    {
      core::MultilevelOptions ml;
      ml.coarsest_size = 1500;
      runtime::WallTimer timer;
      const core::IgpResult multi =
          core::multilevel_repartition(g, base_part, n_old, ml);
      table.add_row("multilevel IGPR (future work)", timer.seconds(),
                    graph::compute_metrics(g, multi.partitioning).cut_total,
                    multi.balanced ? "yes" : "no");
    }
    std::cout << "D. Flat vs multilevel incremental partitioning\n";
    table.print(std::cout);
  }
  return 0;
}
