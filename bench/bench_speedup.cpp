// Reproduction of the paper's parallel-speedup claim (§3): "The algorithm
// provides speedup of around 15 to 20 on a 32 node CM-5."
//
// Three experiments, all through the pigp::Session API:
//  1. shared-memory engine: IGPR wall time vs thread count on the largest
//     paper workload (mesh B, +672 nodes);
//  2. SPMD engine: the same pipeline on the thread-backed message-passing
//     Machine vs rank count (the communication structure of the CM-5 code),
//     selected via the "spmd" backend;
//  3. session streaming throughput: deltas absorbed per second on the
//     scaled 400k-vertex workload, with and without batching — the
//     baseline number for streaming-path perf PRs;
//  4. concurrent ingest/serve: the same stream through an AsyncSession
//     while reader threads hammer part_of on the epoch-published view —
//     sustained deltas/s with readers attached should stay close to the
//     single-threaded vertex_count row.
//
// Absolute speedups differ from a 1994 CM-5 (this problem is tiny for a
// modern core, so Amdahl effects bite sooner); the shape to verify is that
// parallel time is well below serial time and scales with workers.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <cmath>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "mesh/paper_meshes.hpp"
#include "pigp.hpp"
#include "support/rng.hpp"

namespace {

using namespace pigp;

/// One timed IGPR repartition through a Session with \p threads workers.
double timed_session_extend(const graph::Graph& base,
                            const graph::Partitioning& initial,
                            const graph::Graph& g_new, int threads,
                            const char* backend, int spmd_ranks = 1) {
  SessionConfig config;
  config.num_parts = initial.num_parts;
  config.backend = backend;
  config.num_threads = threads;
  config.spmd_ranks = spmd_ranks;
  Session session(config, base, initial);
  graph::Graph extended = g_new;  // copy outside the timed region
  runtime::WallTimer timer;
  (void)session.apply_extended(std::move(extended), base.num_vertices());
  return timer.seconds();
}

/// A localized burst of new vertices attached to random existing ones —
/// the stream unit for the throughput experiment.
graph::GraphDelta make_stream_delta(graph::VertexId current_vertices,
                                    int burst, SplitMix64& rng) {
  graph::GraphDelta delta;
  delta.added_vertices.reserve(static_cast<std::size_t>(burst));
  // Anchor the burst near one random vertex so it is localized, like a
  // refinement front.
  const auto anchor = static_cast<graph::VertexId>(
      rng.next_below(static_cast<std::uint64_t>(current_vertices)));
  for (int i = 0; i < burst; ++i) {
    graph::VertexAddition add;
    const auto jitter = static_cast<graph::VertexId>(rng.next_below(64));
    const graph::VertexId a =
        std::min<graph::VertexId>(current_vertices - 1, anchor + jitter);
    add.edges.emplace_back(a, 1.0);
    if (i > 0) {
      // Chain into the previous new vertex so the burst is connected.
      add.edges.emplace_back(current_vertices + i - 1, 1.0);
    }
    delta.added_vertices.push_back(std::move(add));
  }
  return delta;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: seconds-scale CI run — single rep, {1,2} workers, and a much
  // smaller "scaled" graph; the full sweep is for real measurements.
  // --json <file>: additionally emit the streaming-throughput section as
  // machine-readable JSON so CI can archive the perf trajectory.
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const int reps = smoke ? 1 : 3;
  const std::vector<int> thread_points =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8, 16, 24, 32};
  const std::vector<int> rank_points =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8, 16, 32};
  const std::vector<int> big_thread_points =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8, 16, 24};
  std::cout << "=== Speedup: IGPR on mesh B +672 nodes, P = "
            << bench::kPaperPartitions << " ===\n";
  std::cout << "(paper: 15-20x on a 32-node CM-5)\n\n";

  const mesh::MeshFamily family = mesh::make_paper_mesh_b();
  const graph::Graph& g = family.refined.back();
  const graph::Partitioning initial =
      spectral::recursive_spectral_bisection(family.base,
                                             bench::kPaperPartitions);

  const int hw = runtime::ThreadPool::hardware_threads();
  std::cout << "hardware threads: " << hw << "\n\n";

  // Warm-up + serial baseline (best of `reps` to de-noise).
  const auto measure = [&](int threads) {
    double best = 1e9;
    for (int rep = 0; rep < reps; ++rep) {
      best = std::min(best, timed_session_extend(family.base, initial, g,
                                                 threads, "igpr"));
    }
    return best;
  };
  const double serial = measure(1);

  TextTable table({"threads", "time (s)", "speedup"});
  for (const int threads : thread_points) {
    if (threads > 2 * hw) break;
    const double t = measure(threads);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", serial / t);
    table.add_row(threads, t, buf);
  }
  table.print(std::cout);

  std::cout << "\n=== SPMD (message-passing) backend, same workload ===\n";
  TextTable spmd_table({"ranks", "time (s)", "speedup vs 1 rank"});
  double spmd_serial = 0.0;
  for (const int ranks : rank_points) {
    double best = 1e9;
    for (int rep = 0; rep < std::min(reps, 2); ++rep) {
      best = std::min(best, timed_session_extend(family.base, initial, g, 1,
                                                 "spmd", ranks));
    }
    if (ranks == 1) spmd_serial = best;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", spmd_serial / best);
    spmd_table.add_row(ranks, best, buf);
  }
  spmd_table.print(std::cout);

  // The 1994 workload is tiny for a 2020s core (the whole repartition runs
  // in tens of milliseconds), so Amdahl limits the speedup above.  To show
  // the parallel phases scale when the problem is large enough — the
  // regime the paper's CM-5 was actually in relative to its CPUs — repeat
  // on a 40x larger mesh-like graph.
  const int big_n = smoke ? 20000 : 400000;
  std::cout << "\n=== Scaled workload: " << big_n
            << "-vertex geometric graph, P = 32, 5% new vertices ===\n";
  const graph::Graph big = graph::random_geometric_graph(
      big_n, 1.2 / std::sqrt(static_cast<double>(big_n)), 9);
  const graph::VertexId big_old = big_n - big_n / 20;
  graph::Partitioning big_initial;
  {
    const graph::Partitioning full =
        spectral::recursive_graph_bisection(big, bench::kPaperPartitions);
    big_initial.num_parts = full.num_parts;
    big_initial.part.assign(full.part.begin(), full.part.begin() + big_old);
  }
  // This sweep isolates the repartition kernel (no session bookkeeping), so
  // it stays on run_igp — the same pipeline the Session backends call.
  const auto measure_big = [&](int threads) {
    const bench::TimedPartition t = bench::run_igp(
        big, big_initial, big_old, /*refine=*/true, threads);
    return t.seconds;
  };
  const double big_serial = measure_big(1);
  TextTable big_table({"threads", "time (s)", "speedup"});
  for (const int threads : big_thread_points) {
    if (threads > hw) break;
    const double t = threads == 1 ? big_serial : measure_big(threads);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", big_serial / t);
    big_table.add_row(threads, t, buf);
  }
  big_table.print(std::cout);

  // ---------------------------------------------------------------------
  // Session streaming throughput: the delta-stream path the Session API
  // adds.  Deltas of `burst` new vertices stream into one session; with
  // batch_policy=vertex_count only every few deltas triggers the LP
  // rebalance, so cheap absorption amortizes the repartition cost.
  const int stream_deltas = smoke ? 8 : 64;
  const int burst = smoke ? 32 : 128;
  const int threads = std::min(smoke ? 2 : 8, hw);
  std::cout << "\n=== Session streaming throughput: " << stream_deltas
            << " deltas x " << burst << " new vertices on the " << big_n
            << "-vertex graph ===\n";
  graph::Partitioning stream_initial =
      spectral::recursive_graph_bisection(big, bench::kPaperPartitions);
  // absorb (s) is delta application + step-1 assignment, rebalance (s) the
  // backend — the split shows what the O(Δ)-maintained PartitionState
  // leaves on the absorption path vs the LP pipeline.
  TextTable stream_table({"batch policy", "repartitions", "time (s)",
                          "absorb (s)", "rebalance (s)", "deltas/s",
                          "final imbalance"});
  struct PolicyPoint {
    const char* label;
    const char* key;
    BatchPolicy policy;
    int vertex_limit;
  };
  struct StreamRow {
    const char* key;
    std::int64_t repartitions;
    double seconds;
    double absorb_seconds;
    double rebalance_seconds;
    double deltas_per_second;
    double final_imbalance;
  };
  std::vector<StreamRow> stream_rows;
  for (const PolicyPoint point :
       {PolicyPoint{"every_delta", "every_delta", BatchPolicy::every_delta,
                    1},
        PolicyPoint{"vertex_count(8 bursts)", "vertex_count",
                    BatchPolicy::vertex_count, 8 * burst}}) {
    SessionConfig config;
    config.num_parts = bench::kPaperPartitions;
    config.backend = "igpr";
    config.num_threads = threads;
    config.batch_policy = point.policy;
    config.batch_vertex_limit = point.vertex_limit;
    Session session(config, big, stream_initial);
    SplitMix64 rng(2026);
    runtime::WallTimer timer;
    for (int d = 0; d < stream_deltas; ++d) {
      (void)session.apply(make_stream_delta(session.graph().num_vertices(),
                                            burst, rng));
    }
    // Flush any batched tail so the comparison ends balanced.
    if (session.pending_updates() > 0) (void)session.repartition();
    const double seconds = timer.seconds();
    // summary() is the O(P) incremental read — no O(V+E) recount inside
    // the measured region's tail.
    stream_table.add_row(point.label, session.counters().repartitions,
                         seconds, session.counters().update_seconds,
                         session.counters().repartition_seconds,
                         stream_deltas / seconds,
                         session.summary().imbalance);
    stream_rows.push_back({point.key, session.counters().repartitions,
                           seconds, session.counters().update_seconds,
                           session.counters().repartition_seconds,
                           stream_deltas / seconds,
                           session.summary().imbalance});
  }
  stream_table.print(std::cout);

  // ---------------------------------------------------------------------
  // Structural-delta streaming: deltas that REMOVE as well as add (edge
  // cuts, vertex retirements, new vertices anchored on live survivors).
  // Three rows, same scripted churn:
  //   rebuild          apply_delta's from-scratch path — every delta pays
  //                    O(V+E) to rebuild the CSR and remap ids (the wall
  //                    this PR removes; kept as the reference oracle);
  //   mutable          the slotted graph's in-place mutators — every delta
  //                    costs O(Δ·deg), independent of |V| and |E|;
  //   session_deferred the full Session path under deferred compaction
  //                    (stable ids, O(Δ) absorption) including the
  //                    periodic rebalance ticks.
  // structural_speedup = mutable/rebuild deltas/s is a same-machine ratio,
  // so the CI gate tracks the representation win itself, not the runner.
  const int struct_deltas = smoke ? 24 : 64;
  std::cout << "\n=== Structural-delta streaming: " << struct_deltas
            << " deltas (4 edge cuts + 2 vertex removals + 2 adds + 4 new"
               " edges each) on the "
            << big_n << "-vertex graph ===\n";
  struct StructRow {
    const char* key;
    double seconds;
    double deltas_per_second;
  };
  std::vector<StructRow> struct_rows;
  // Per-delta churn counts, shared by all three rows.
  constexpr int kCutEdges = 4;
  constexpr int kRemovedVertices = 2;
  constexpr int kAddedVertices = 2;
  constexpr int kAddedEdges = 4;
  const auto pick_alive = [](const std::vector<graph::VertexId>& alive,
                             SplitMix64& rng) {
    return alive[rng.next_below(alive.size())];
  };
  {  // rebuild row: the historical full-rebuild path, including the O(V)
     // id remap every consumer of old_to_new had to pay.
    graph::Graph g = big;
    std::vector<graph::VertexId> alive(
        static_cast<std::size_t>(g.num_vertices()));
    std::iota(alive.begin(), alive.end(), 0);
    SplitMix64 rng(2030);
    runtime::WallTimer timer;
    for (int d = 0; d < struct_deltas; ++d) {
      graph::GraphDelta delta;
      for (int i = 0; i < kCutEdges; ++i) {
        const graph::VertexId u = pick_alive(alive, rng);
        const auto nbrs = g.neighbors(u);
        if (nbrs.empty()) continue;
        const graph::VertexId v = nbrs[rng.next_below(nbrs.size())];
        const auto e = graph::canonical_edge(u, v);
        if (std::find(delta.removed_edges.begin(), delta.removed_edges.end(),
                      e) == delta.removed_edges.end()) {
          delta.removed_edges.push_back(e);
        }
      }
      for (int i = 0; i < kRemovedVertices; ++i) {
        const std::size_t k = rng.next_below(alive.size());
        delta.removed_vertices.push_back(alive[k]);
        alive[k] = alive.back();
        alive.pop_back();
      }
      for (int i = 0; i < kAddedVertices; ++i) {
        graph::VertexAddition add;
        const graph::VertexId a = pick_alive(alive, rng);
        const graph::VertexId b = pick_alive(alive, rng);
        add.edges.emplace_back(a, 1.0);
        if (b != a) add.edges.emplace_back(b, 1.0);
        delta.added_vertices.push_back(std::move(add));
      }
      for (int i = 0; i < kAddedEdges; ++i) {
        const graph::VertexId u = pick_alive(alive, rng);
        const graph::VertexId v = pick_alive(alive, rng);
        if (u != v) delta.added_edges.emplace_back(u, v);
      }
      graph::DeltaResult r = graph::apply_delta(g, delta);
      g = std::move(r.graph);
      for (graph::VertexId& id : alive) {
        id = r.old_to_new[static_cast<std::size_t>(id)];
      }
      alive.insert(alive.end(), r.new_vertex_ids.begin(),
                   r.new_vertex_ids.end());
    }
    const double seconds = timer.seconds();
    struct_rows.push_back({"rebuild", seconds, struct_deltas / seconds});
  }
  {  // mutable row: identical churn through the in-place mutators.
    graph::Graph g = big;
    std::vector<graph::VertexId> alive(
        static_cast<std::size_t>(g.num_vertices()));
    std::iota(alive.begin(), alive.end(), 0);
    SplitMix64 rng(2030);
    runtime::WallTimer timer;
    for (int d = 0; d < struct_deltas; ++d) {
      for (int i = 0; i < kCutEdges; ++i) {
        const graph::VertexId u = pick_alive(alive, rng);
        const auto nbrs = g.neighbors(u);
        if (nbrs.empty()) continue;
        const graph::VertexId v = nbrs[rng.next_below(nbrs.size())];
        if (g.has_edge(u, v)) (void)g.remove_edge(u, v);
      }
      for (int i = 0; i < kRemovedVertices; ++i) {
        const std::size_t k = rng.next_below(alive.size());
        g.remove_vertex(alive[k]);
        alive[k] = alive.back();
        alive.pop_back();
      }
      for (int i = 0; i < kAddedVertices; ++i) {
        const graph::VertexId id = g.add_vertex(1.0);
        const graph::VertexId a = pick_alive(alive, rng);
        const graph::VertexId b = pick_alive(alive, rng);
        (void)g.insert_edge(id, a, 1.0);
        if (b != a) (void)g.insert_edge(id, b, 1.0);
        alive.push_back(id);
      }
      for (int i = 0; i < kAddedEdges; ++i) {
        const graph::VertexId u = pick_alive(alive, rng);
        const graph::VertexId v = pick_alive(alive, rng);
        if (u != v) (void)g.insert_edge(u, v, 1.0);
      }
    }
    const double seconds = timer.seconds();
    struct_rows.push_back({"mutable", seconds, struct_deltas / seconds});
    g.validate();  // the fast path must still be a well-formed graph
  }
  {  // session_deferred row: the full API path, rebalance ticks included.
    SessionConfig config;
    config.num_parts = bench::kPaperPartitions;
    config.backend = "igpr";
    config.num_threads = threads;
    config.batch_policy = BatchPolicy::vertex_count;
    config.batch_vertex_limit =
        struct_deltas * (kRemovedVertices + kAddedVertices) / 4;
    config.graph_compaction = GraphCompaction::deferred;
    config.compaction_slack = 1.0;  // pure O(Δ): ids stay stable throughout
    Session session(config, big, stream_initial);
    std::vector<graph::VertexId> alive(
        static_cast<std::size_t>(big.num_vertices()));
    std::iota(alive.begin(), alive.end(), 0);
    SplitMix64 rng(2030);
    runtime::WallTimer timer;
    for (int d = 0; d < struct_deltas; ++d) {
      graph::GraphDelta delta;
      const graph::Graph& g = session.graph();
      for (int i = 0; i < kCutEdges; ++i) {
        const graph::VertexId u = pick_alive(alive, rng);
        const auto nbrs = g.neighbors(u);
        if (nbrs.empty()) continue;
        const graph::VertexId v = nbrs[rng.next_below(nbrs.size())];
        const auto e = graph::canonical_edge(u, v);
        if (std::find(delta.removed_edges.begin(), delta.removed_edges.end(),
                      e) == delta.removed_edges.end()) {
          delta.removed_edges.push_back(e);
        }
      }
      for (int i = 0; i < kRemovedVertices; ++i) {
        const std::size_t k = rng.next_below(alive.size());
        delta.removed_vertices.push_back(alive[k]);
        alive[k] = alive.back();
        alive.pop_back();
      }
      for (int i = 0; i < kAddedVertices; ++i) {
        graph::VertexAddition add;
        const graph::VertexId a = pick_alive(alive, rng);
        const graph::VertexId b = pick_alive(alive, rng);
        add.edges.emplace_back(a, 1.0);
        if (b != a) add.edges.emplace_back(b, 1.0);
        delta.added_vertices.push_back(std::move(add));
      }
      for (int i = 0; i < kAddedEdges; ++i) {
        const graph::VertexId u = pick_alive(alive, rng);
        const graph::VertexId v = pick_alive(alive, rng);
        if (u != v) delta.added_edges.emplace_back(u, v);
      }
      (void)session.apply(delta);
      for (int i = kAddedVertices; i > 0; --i) {
        alive.push_back(session.graph().num_vertices() - i);
      }
    }
    if (session.pending_updates() > 0) (void)session.repartition();
    const double seconds = timer.seconds();
    struct_rows.push_back(
        {"session_deferred", seconds, struct_deltas / seconds});
  }
  double structural_speedup = 0.0;
  {
    double rebuild_dps = 0.0;
    double mutable_dps = 0.0;
    TextTable struct_table({"path", "time (s)", "deltas/s", "vs rebuild"});
    for (const StructRow& r : struct_rows) {
      if (std::strcmp(r.key, "rebuild") == 0) rebuild_dps = r.deltas_per_second;
      if (std::strcmp(r.key, "mutable") == 0) mutable_dps = r.deltas_per_second;
    }
    structural_speedup =
        rebuild_dps > 0.0 ? mutable_dps / rebuild_dps : 0.0;
    for (const StructRow& r : struct_rows) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1fx",
                    rebuild_dps > 0.0 ? r.deltas_per_second / rebuild_dps
                                      : 0.0);
      struct_table.add_row(r.key, r.seconds, r.deltas_per_second, buf);
    }
    struct_table.print(std::cout);
  }

  // ---------------------------------------------------------------------
  // Concurrent ingest/serve: the same vertex_count delta stream pushed
  // through an AsyncSession while reader threads hammer part_of on the
  // epoch-published view.  The number to watch is sustained deltas/s with
  // readers attached vs the single-threaded vertex_count row above — the
  // view publication protocol should cost the writer almost nothing.
  // Readers duty-cycle (a lookup batch, then a short sleep) so the bench
  // is meaningful on few-core CI runners where 1 + 1 + N busy threads
  // would otherwise just time-slice the writer to death.
  const int reader_threads = 4;
  std::cout << "\n=== Concurrent ingest/serve: " << stream_deltas
            << " deltas x " << burst << " new vertices, " << reader_threads
            << " readers on the published view ===\n";
  double cs_seconds = 0.0;
  double cs_dps = 0.0;
  double cs_lookups_per_second = 0.0;
  double cs_imbalance = 0.0;
  std::uint64_t cs_epochs = 0;
  std::int64_t cs_committed = 0;
  std::uint64_t cs_lookups = 0;
  {
    SessionConfig config;
    config.num_parts = bench::kPaperPartitions;
    config.backend = "igpr";
    config.num_threads = threads;
    config.batch_policy = BatchPolicy::vertex_count;
    config.batch_vertex_limit = 8 * burst;
    AsyncSession session(config, big, stream_initial);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> checksum{0};
    std::vector<std::thread> readers;
    readers.reserve(static_cast<std::size_t>(reader_threads));
    for (int r = 0; r < reader_threads; ++r) {
      readers.emplace_back([&session, &stop, &lookups, &checksum, r] {
        SplitMix64 reader_rng(0x9e3779b9u + static_cast<std::uint64_t>(r));
        std::shared_ptr<const PartitionView> view = session.view();
        std::uint64_t seen = view->epoch();
        std::uint64_t local = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          if (session.epoch() != seen) {  // one relaxed load per batch
            view = session.view();
            seen = view->epoch();
          }
          const auto n = static_cast<std::uint64_t>(view->num_vertices());
          for (int i = 0; i < 256; ++i) {
            const auto v =
                static_cast<graph::VertexId>(reader_rng.next_below(n));
            local += static_cast<std::uint64_t>(view->part_of(v));
          }
          lookups.fetch_add(256, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
        checksum.fetch_add(local, std::memory_order_relaxed);
      });
    }

    SplitMix64 rng(2026);
    graph::VertexId current = big.num_vertices();
    runtime::WallTimer timer;
    for (int d = 0; d < stream_deltas; ++d) {
      session.submit(make_stream_delta(current, burst, rng));
      current += burst;
    }
    session.flush();
    cs_seconds = timer.seconds();
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : readers) t.join();
    if (checksum.load() == std::uint64_t(-1)) return 1;  // keep loops live

    cs_lookups = lookups.load();
    cs_dps = stream_deltas / cs_seconds;
    cs_lookups_per_second = static_cast<double>(cs_lookups) / cs_seconds;
    cs_epochs = session.epoch();
    cs_committed =
        static_cast<std::int64_t>(session.stats().rebalances_committed);
    cs_imbalance = session.view()->summary().imbalance;
    session.close();
  }
  double baseline_dps = 0.0;
  for (const StreamRow& r : stream_rows) {
    if (std::strcmp(r.key, "vertex_count") == 0) {
      baseline_dps = r.deltas_per_second;
    }
  }
  const double cs_ratio = baseline_dps > 0.0 ? cs_dps / baseline_dps : 0.0;
  {
    TextTable cs_table({"readers", "rebalances", "time (s)", "deltas/s",
                        "lookups/s", "epochs", "vs 1-thread"});
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", cs_ratio);
    cs_table.add_row(reader_threads, cs_committed, cs_seconds, cs_dps,
                     cs_lookups_per_second, cs_epochs, buf);
    cs_table.print(std::cout);
  }

  // ---------------------------------------------------------------------
  // Distributed streaming: the same vertex_count delta stream through the
  // SPMD backend, once per transport.  "in_process" is the thread-backed
  // Machine; "tcp" and "tcp+delta" run every rank over real loopback
  // sockets (framing, filter chain, socket timeouts).  The deltas/s gap
  // between the rows is the wire cost of the distributed path, and all
  // transports must land on the identical partition (bit-parity is a
  // correctness gate here, not just a test).
  const int dist_ranks = 2;
  std::cout << "\n=== Distributed streaming: SPMD backend, " << dist_ranks
            << " ranks, " << stream_deltas << " deltas x " << burst
            << " new vertices ===\n";
  struct DistRow {
    std::string key;
    std::int64_t repartitions;
    double seconds;
    double deltas_per_second;
    double final_imbalance;
  };
  std::vector<DistRow> dist_rows;
  std::vector<graph::PartId> dist_reference;
  TextTable dist_table({"transport", "repartitions", "time (s)", "deltas/s",
                        "final imbalance", "parity"});
  struct TransportPoint {
    const char* key;
    const char* transport;
    const char* filters;
  };
  for (const TransportPoint point :
       {TransportPoint{"in_process", "in_process", ""},
        TransportPoint{"tcp", "tcp", ""},
        TransportPoint{"tcp+delta", "tcp", "delta"}}) {
    SessionConfig config;
    config.num_parts = bench::kPaperPartitions;
    config.backend = "spmd";
    config.spmd_ranks = dist_ranks;
    config.spmd_transport = point.transport;
    config.spmd_wire_filters = point.filters;
    config.batch_policy = BatchPolicy::vertex_count;
    config.batch_vertex_limit = 8 * burst;
    Session session(config, big, stream_initial);
    SplitMix64 rng(2026);
    runtime::WallTimer timer;
    for (int d = 0; d < stream_deltas; ++d) {
      (void)session.apply(make_stream_delta(session.graph().num_vertices(),
                                            burst, rng));
    }
    if (session.pending_updates() > 0) (void)session.repartition();
    const double seconds = timer.seconds();
    const char* parity = "reference";
    if (dist_reference.empty()) {
      dist_reference = session.partitioning().part;
    } else if (session.partitioning().part == dist_reference) {
      parity = "identical";
    } else {
      std::cerr << "FATAL: transport " << point.key
                << " diverged from in_process\n";
      return 1;
    }
    dist_table.add_row(point.key, session.counters().repartitions, seconds,
                       stream_deltas / seconds, session.summary().imbalance,
                       parity);
    dist_rows.push_back({point.key, session.counters().repartitions, seconds,
                         stream_deltas / seconds,
                         session.summary().imbalance});
  }
  dist_table.print(std::cout);

  // ---------------------------------------------------------------------
  // Boundary-fraction layering sweep: batch layering vs the boundary-
  // seeded, depth-capped layering as the dirty-boundary share grows —
  // the cost model the streaming path's step 2 rides on.  Starting from a
  // clean RGB partitioning, `permille` of the vertices are randomly
  // reassigned; the batch path rescans every member of every partition
  // regardless, the boundary-seeded path costs O(boundary · depth).  The
  // seeded_speedup ratio is what the CI perf gate tracks (it is largely
  // machine-independent, unlike raw milliseconds).
  // Best-of-many: the per-iteration cost is ~1 ms, and the CI perf gate
  // tracks the full/seeded ratio, so cheap repetition buys stability.  The
  // repetition loops are additionally time-boxed so sanitizer builds (one
  // to two orders of magnitude slower) stay inside the smoke budget.
  const int sweep_n = smoke ? 8000 : 16000;
  const int sweep_reps = smoke ? 20 : 30;
  const double sweep_budget_s = 1.5;
  std::cout << "\n=== Layering cost vs boundary fraction: " << sweep_n
            << "-vertex geometric graph, P = 32, depth cap 4 ===\n";
  struct SweepRow {
    int permille;
    std::int64_t boundary_vertices;
    double full_ms;
    double seeded_ms;
    double seeded_speedup;
  };
  std::vector<SweepRow> sweep_rows;
  TextTable sweep_table({"dirty permille", "boundary vertices", "full (ms)",
                         "boundary-seeded (ms)", "speedup"});
  // One graph + one base partitioning for all points (the expensive part);
  // each point dirties its own copy.
  const graph::Graph sweep_graph = graph::random_geometric_graph(
      sweep_n, 1.2 / std::sqrt(static_cast<double>(sweep_n)), 17);
  const graph::Partitioning sweep_base =
      spectral::recursive_graph_bisection(sweep_graph,
                                          bench::kPaperPartitions);
  for (const int permille : {10, 100, 500}) {
    graph::Partitioning sweep_p = sweep_base;
    graph::PartitionState sweep_state(sweep_graph, sweep_p);
    SplitMix64 sweep_rng(2027);
    const auto dirty = static_cast<int>(
        static_cast<std::int64_t>(sweep_n) * permille / 1000);
    for (int i = 0; i < dirty; ++i) {
      const auto v = static_cast<graph::VertexId>(
          sweep_rng.next_below(static_cast<std::uint64_t>(sweep_n)));
      const auto to = static_cast<graph::PartId>(
          sweep_rng.next_below(bench::kPaperPartitions));
      sweep_state.move_vertex(sweep_graph, sweep_p, v, to);
    }
    std::int64_t boundary = 0;
    for (graph::PartId q = 0; q < sweep_p.num_parts; ++q) {
      boundary += static_cast<std::int64_t>(
          sweep_state.boundary_vertices(q).size());
    }
    double full_s = 1e9;
    runtime::WallTimer full_budget;
    for (int rep = 0; rep < sweep_reps; ++rep) {
      runtime::WallTimer timer;
      const core::LayeringResult r =
          core::layer_partitions(sweep_graph, sweep_p, 1);
      full_s = std::min(full_s, timer.seconds());
      if (r.label.empty()) return 1;  // keep the optimizer honest
      if (full_budget.seconds() > sweep_budget_s) break;
    }
    // Depth-capped like the default balance stage (max_layers = 4); the
    // persistent object is the session-workspace configuration.
    core::BoundaryLayering layering(sweep_graph, sweep_p);
    double seeded_s = 1e9;
    runtime::WallTimer seeded_budget;
    for (int rep = 0; rep < sweep_reps; ++rep) {
      runtime::WallTimer timer;
      layering.reseed(sweep_state, 1);
      layering.grow(4, 1);
      seeded_s = std::min(seeded_s, timer.seconds());
      if (seeded_budget.seconds() > sweep_budget_s) break;
    }
    const SweepRow row{permille, boundary, full_s * 1e3, seeded_s * 1e3,
                       full_s / seeded_s};
    sweep_rows.push_back(row);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", row.seeded_speedup);
    sweep_table.add_row(permille, boundary, row.full_ms, row.seeded_ms, buf);
  }
  sweep_table.print(std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << "{\n"
        << "  \"bench\": \"bench_speedup\",\n"
        << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
        << "  \"sections\": {\n"
        << "    \"session_streaming\": {\n"
        << "      \"graph_vertices\": " << big_n << ",\n"
        << "      \"num_parts\": " << bench::kPaperPartitions << ",\n"
        << "      \"deltas\": " << stream_deltas << ",\n"
        << "      \"burst\": " << burst << ",\n"
        << "      \"threads\": " << threads << ",\n"
        << "      \"policies\": [\n";
    for (std::size_t i = 0; i < stream_rows.size(); ++i) {
      const StreamRow& r = stream_rows[i];
      out << "        {\"policy\": \"" << r.key << "\""
          << ", \"repartitions\": " << r.repartitions
          << ", \"seconds\": " << r.seconds
          << ", \"absorb_seconds\": " << r.absorb_seconds
          << ", \"rebalance_seconds\": " << r.rebalance_seconds
          << ", \"deltas_per_second\": " << r.deltas_per_second
          << ", \"final_imbalance\": " << r.final_imbalance << "}"
          << (i + 1 < stream_rows.size() ? "," : "") << "\n";
    }
    out << "      ]\n"
        << "    },\n"
        << "    \"structural_streaming\": {\n"
        << "      \"graph_vertices\": " << big_n << ",\n"
        << "      \"num_parts\": " << bench::kPaperPartitions << ",\n"
        << "      \"deltas\": " << struct_deltas << ",\n"
        << "      \"cut_edges\": " << kCutEdges << ",\n"
        << "      \"removed_vertices\": " << kRemovedVertices << ",\n"
        << "      \"added_vertices\": " << kAddedVertices << ",\n"
        << "      \"added_edges\": " << kAddedEdges << ",\n"
        << "      \"structural_speedup\": " << structural_speedup << ",\n"
        << "      \"rows\": [\n";
    for (std::size_t i = 0; i < struct_rows.size(); ++i) {
      const StructRow& r = struct_rows[i];
      out << "        {\"path\": \"" << r.key << "\""
          << ", \"seconds\": " << r.seconds
          << ", \"deltas_per_second\": " << r.deltas_per_second << "}"
          << (i + 1 < struct_rows.size() ? "," : "") << "\n";
    }
    out << "      ]\n"
        << "    },\n"
        << "    \"concurrent_streaming\": {\n"
        << "      \"graph_vertices\": " << big_n << ",\n"
        << "      \"num_parts\": " << bench::kPaperPartitions << ",\n"
        << "      \"deltas\": " << stream_deltas << ",\n"
        << "      \"burst\": " << burst << ",\n"
        << "      \"reader_threads\": " << reader_threads << ",\n"
        << "      \"deltas_per_second\": " << cs_dps << ",\n"
        << "      \"lookups_per_second\": " << cs_lookups_per_second << ",\n"
        << "      \"epochs_published\": " << cs_epochs << ",\n"
        << "      \"rebalances_committed\": " << cs_committed << ",\n"
        << "      \"final_imbalance\": " << cs_imbalance << ",\n"
        << "      \"single_thread_ratio\": " << cs_ratio << "\n"
        << "    },\n"
        << "    \"distributed_streaming\": {\n"
        << "      \"graph_vertices\": " << big_n << ",\n"
        << "      \"num_parts\": " << bench::kPaperPartitions << ",\n"
        << "      \"deltas\": " << stream_deltas << ",\n"
        << "      \"burst\": " << burst << ",\n"
        << "      \"ranks\": " << dist_ranks << ",\n"
        << "      \"transports\": [\n";
    for (std::size_t i = 0; i < dist_rows.size(); ++i) {
      const DistRow& r = dist_rows[i];
      out << "        {\"transport\": \"" << r.key << "\""
          << ", \"repartitions\": " << r.repartitions
          << ", \"seconds\": " << r.seconds
          << ", \"deltas_per_second\": " << r.deltas_per_second
          << ", \"final_imbalance\": " << r.final_imbalance << "}"
          << (i + 1 < dist_rows.size() ? "," : "") << "\n";
    }
    out << "      ]\n"
        << "    },\n"
        << "    \"layering_sweep\": {\n"
        << "      \"graph_vertices\": " << sweep_n << ",\n"
        << "      \"num_parts\": " << bench::kPaperPartitions << ",\n"
        << "      \"depth_cap\": 4,\n"
        << "      \"points\": [\n";
    for (std::size_t i = 0; i < sweep_rows.size(); ++i) {
      const SweepRow& r = sweep_rows[i];
      out << "        {\"permille\": " << r.permille
          << ", \"boundary_vertices\": " << r.boundary_vertices
          << ", \"full_ms\": " << r.full_ms
          << ", \"seeded_ms\": " << r.seeded_ms
          << ", \"seeded_speedup\": " << r.seeded_speedup << "}"
          << (i + 1 < sweep_rows.size() ? "," : "") << "\n";
    }
    out << "      ]\n"
        << "    }\n"
        << "  }\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
