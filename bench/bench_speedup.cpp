// Reproduction of the paper's parallel-speedup claim (§3): "The algorithm
// provides speedup of around 15 to 20 on a 32 node CM-5."
//
// Two experiments on the largest workload (mesh B, +672 nodes):
//  1. shared-memory engine: IGPR wall time vs OpenMP thread count;
//  2. SPMD engine: the same pipeline on the thread-backed message-passing
//     Machine vs rank count (the communication structure of the CM-5 code).
//
// Absolute speedups differ from a 1994 CM-5 (this problem is tiny for a
// modern core, so Amdahl effects bite sooner); the shape to verify is that
// parallel time is well below serial time and scales with workers.

#include <cstring>
#include <iostream>
#include <vector>

#include <cmath>

#include "bench_common.hpp"
#include "core/spmd_igp.hpp"
#include "graph/generators.hpp"
#include "mesh/paper_meshes.hpp"

int main(int argc, char** argv) {
  using namespace pigp;

  // --smoke: seconds-scale CI run — single rep, {1,2} workers, and a much
  // smaller "scaled" graph; the full sweep is for real measurements.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int reps = smoke ? 1 : 3;
  const std::vector<int> thread_points =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8, 16, 24, 32};
  const std::vector<int> rank_points =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8, 16, 32};
  const std::vector<int> big_thread_points =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8, 16, 24};
  std::cout << "=== Speedup: IGPR on mesh B +672 nodes, P = "
            << bench::kPaperPartitions << " ===\n";
  std::cout << "(paper: 15-20x on a 32-node CM-5)\n\n";

  const mesh::MeshFamily family = mesh::make_paper_mesh_b();
  const graph::Graph& g = family.refined.back();
  const graph::VertexId n_old = family.base.num_vertices();
  const graph::Partitioning initial =
      spectral::recursive_spectral_bisection(family.base,
                                             bench::kPaperPartitions);

  const int hw = runtime::ThreadPool::hardware_threads();
  std::cout << "hardware threads: " << hw << "\n\n";

  // Warm-up + serial baseline (best of 3 to de-noise).
  const auto measure = [&](int threads) {
    double best = 1e9;
    for (int rep = 0; rep < reps; ++rep) {
      const bench::TimedPartition t =
          bench::run_igp(g, initial, n_old, /*refine=*/true, threads);
      best = std::min(best, t.seconds);
    }
    return best;
  };
  const double serial = measure(1);

  TextTable table({"threads", "time (s)", "speedup"});
  for (const int threads : thread_points) {
    if (threads > 2 * hw) break;
    const double t = measure(threads);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", serial / t);
    table.add_row(threads, t, buf);
  }
  table.print(std::cout);

  std::cout << "\n=== SPMD (message-passing) engine, same workload ===\n";
  TextTable spmd_table({"ranks", "time (s)", "speedup vs 1 rank"});
  double spmd_serial = 0.0;
  for (const int ranks : rank_points) {
    runtime::Machine machine(ranks);
    core::IgpOptions options;
    options.refine = true;
    double best = 1e9;
    for (int rep = 0; rep < std::min(reps, 2); ++rep) {
      runtime::WallTimer timer;
      const core::IgpResult result =
          core::spmd_repartition(machine, g, initial, n_old, options);
      best = std::min(best, timer.seconds());
      (void)result;
    }
    if (ranks == 1) spmd_serial = best;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", spmd_serial / best);
    spmd_table.add_row(ranks, best, buf);
  }
  spmd_table.print(std::cout);

  // The 1994 workload is tiny for a 2020s core (the whole repartition runs
  // in tens of milliseconds), so Amdahl limits the speedup above.  To show
  // the parallel phases scale when the problem is large enough — the
  // regime the paper's CM-5 was actually in relative to its CPUs — repeat
  // on a 40x larger mesh-like graph.
  const int big_n = smoke ? 20000 : 400000;
  std::cout << "\n=== Scaled workload: " << big_n
            << "-vertex geometric graph, P = 32, 5% new vertices ===\n";
  const graph::Graph big = graph::random_geometric_graph(
      big_n, 1.2 / std::sqrt(static_cast<double>(big_n)), 9);
  const graph::VertexId big_old = big_n - big_n / 20;
  graph::Partitioning big_initial;
  {
    const graph::Partitioning full =
        spectral::recursive_graph_bisection(big, bench::kPaperPartitions);
    big_initial.num_parts = full.num_parts;
    big_initial.part.assign(full.part.begin(), full.part.begin() + big_old);
  }
  const auto measure_big = [&](int threads) {
    const bench::TimedPartition t = bench::run_igp(
        big, big_initial, big_old, /*refine=*/true, threads);
    return t.seconds;
  };
  const double big_serial = measure_big(1);
  TextTable big_table({"threads", "time (s)", "speedup"});
  for (const int threads : big_thread_points) {
    if (threads > hw) break;
    const double t = threads == 1 ? big_serial : measure_big(threads);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", big_serial / t);
    big_table.add_row(threads, t, buf);
  }
  big_table.print(std::cout);
  return 0;
}
