// Reproduction of Figure 11 (Ou & Ranka, SC'94): incremental graph
// partitioning vs spectral bisection from scratch on the mesh-A refinement
// sequence (1071 -> 1096 -> 1121 -> 1152 -> 1192 nodes, 32 partitions).
//
// Protocol, exactly as in the paper:
//  * the initial 1071-node mesh is partitioned with recursive spectral
//    bisection (the "Initial Graph" block);
//  * each refined mesh is repartitioned three ways: SB from scratch,
//    IGP chained on the previous IGP result, IGPR chained on the previous
//    IGPR result;
//  * columns: serial seconds (Time-s), parallel seconds (Time-p), and the
//    cutset Total / Max / Min.
//
// Paper reference values are printed beside the measured ones.  Absolute
// times are incomparable (1994 CM-5 vs this machine); the shape to verify
// is Time(IGP) << Time(SB), cut(IGP) slightly above SB, cut(IGPR) ~ SB.

#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mesh/paper_meshes.hpp"

namespace {

using namespace pigp;
using bench::kPaperPartitions;

struct PaperRow {
  const char* partitioner;
  double time_s;
  double time_p;  // negative = not reported
  int total, max, min;
};

struct PaperBlock {
  int nodes, edges;
  std::vector<PaperRow> rows;
};

const std::vector<PaperBlock> kPaperFig11 = {
    {1096, 3260, {{"SB", 31.71, -1, 733, 56, 33},
                  {"IGP", 14.75, 0.68, 747, 55, 34},
                  {"IGPR", 16.87, 0.88, 730, 54, 34}}},
    {1121, 3335, {{"SB", 34.05, -1, 732, 56, 34},
                  {"IGP", 13.63, 0.73, 752, 54, 33},
                  {"IGPR", 16.42, 1.05, 727, 54, 33}}},
    {1152, 3428, {{"SB", 34.96, -1, 716, 57, 34},
                  {"IGP", 15.89, 0.92, 757, 56, 33},
                  {"IGPR", 18.32, 1.28, 741, 56, 33}}},
    {1192, 3548, {{"SB", 38.20, -1, 774, 63, 34},
                  {"IGP", 15.69, 0.94, 815, 63, 34},
                  {"IGPR", 18.43, 1.26, 779, 59, 34}}},
};

std::string fmt_time(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: CI-sized run — first refinement step only, 2 parallel threads.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::cout << "=== Figure 11: mesh A refinement sequence, P = "
            << kPaperPartitions << (smoke ? " (smoke)" : "") << " ===\n";
  mesh::MeshSequence seq = mesh::make_paper_mesh_a();
  if (smoke && seq.graphs.size() > 2) seq.graphs.resize(2);
  const int threads = smoke ? 2 : bench::parallel_threads();
  std::cout << "meshes:";
  for (const auto& g : seq.graphs) {
    std::cout << " |V|=" << g.num_vertices() << "/|E|=" << g.num_edges();
  }
  std::cout << "\nparallel threads for Time-p: " << threads << "\n\n";

  // Initial partition (paper: SB cut 734 / 56 / 35 at 1071 nodes).
  const bench::TimedPartition initial =
      bench::run_sb(seq.graphs[0], kPaperPartitions);
  const auto m0 = graph::compute_metrics(seq.graphs[0], initial.partitioning);
  TextTable init_table({"Initial graph", "|V|", "|E|", "Time-s", "Total",
                        "Max", "Min"});
  init_table.add_row("SB (paper)", 1071, 3185, "-", 734, 56, 35);
  init_table.add_row("SB (ours)", seq.graphs[0].num_vertices(),
                     seq.graphs[0].num_edges(), fmt_time(initial.seconds),
                     m0.cut_total, m0.cut_max, m0.cut_min);
  init_table.print(std::cout);
  std::cout << '\n';

  graph::Partitioning igp_chain = initial.partitioning;
  graph::Partitioning igpr_chain = initial.partitioning;

  for (std::size_t step = 1; step < seq.graphs.size(); ++step) {
    const graph::Graph& g = seq.graphs[step];
    const graph::VertexId n_old = seq.graphs[step - 1].num_vertices();
    const PaperBlock& paper = kPaperFig11[step - 1];

    const bench::TimedPartition sb = bench::run_sb(g, kPaperPartitions);
    const bench::TimedPartition igp_s =
        bench::run_igp(g, igp_chain, n_old, /*refine=*/false, 1);
    const bench::TimedPartition igp_p =
        bench::run_igp(g, igp_chain, n_old, /*refine=*/false, threads);
    const bench::TimedPartition igpr_s =
        bench::run_igp(g, igpr_chain, n_old, /*refine=*/true, 1);
    const bench::TimedPartition igpr_p =
        bench::run_igp(g, igpr_chain, n_old, /*refine=*/true, threads);

    const auto m_sb = graph::compute_metrics(g, sb.partitioning);
    const auto m_igp = graph::compute_metrics(g, igp_s.partitioning);
    const auto m_igpr = graph::compute_metrics(g, igpr_s.partitioning);

    TextTable table({"|V|=" + std::to_string(g.num_vertices()), "Time-s",
                     "Time-p", "Total", "Max", "Min"});
    for (const PaperRow& row : paper.rows) {
      table.add_row(std::string(row.partitioner) + " (paper)",
                    fmt_time(row.time_s),
                    row.time_p < 0 ? std::string("-") : fmt_time(row.time_p),
                    row.total, row.max, row.min);
    }
    table.add_separator();
    table.add_row("SB (ours)", fmt_time(sb.seconds), "-", m_sb.cut_total,
                  m_sb.cut_max, m_sb.cut_min);
    table.add_row("IGP (ours)", fmt_time(igp_s.seconds),
                  fmt_time(igp_p.seconds), m_igp.cut_total, m_igp.cut_max,
                  m_igp.cut_min);
    table.add_row("IGPR (ours)", fmt_time(igpr_s.seconds),
                  fmt_time(igpr_p.seconds), m_igpr.cut_total, m_igpr.cut_max,
                  m_igpr.cut_min);
    table.print(std::cout);

    const double speed_ratio = sb.seconds / std::max(igp_s.seconds, 1e-9);
    std::cout << "shape check: SB/IGP serial time ratio = " << speed_ratio
              << "x (paper ~2.2x), IGP/SB cut = "
              << m_igp.cut_total / m_sb.cut_total
              << ", IGPR/SB cut = " << m_igpr.cut_total / m_sb.cut_total
              << "\n\n";

    igp_chain = igp_s.partitioning;
    igpr_chain = igpr_s.partitioning;
  }
  return 0;
}
