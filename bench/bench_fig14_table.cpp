// Reproduction of Figure 14 (Ou & Ranka, SC'94): the large irregular mesh
// (10166 nodes / ~30471 edges) with four independent localized refinements
// of growing size (+48, +139, +229, +672 nodes per the table's |V| values;
// the prose says "68" for the first — the table wins).  32 partitions.
//
// Each refinement is repartitioned three ways (SB from scratch, IGP, IGPR),
// starting from the same RSB partition of the base mesh.  The paper's
// observations to reproduce:
//  * IGP serial time is at least an order of magnitude below SB;
//  * larger increments need more balancing stages (1, 1, 2, 3);
//  * IGP's cut degrades with increment size (max cut inflates) and IGPR
//    recovers most of the gap to SB.

#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mesh/paper_meshes.hpp"

namespace {

using namespace pigp;
using bench::kPaperPartitions;

struct PaperRow {
  const char* partitioner;
  double time_s;
  double time_p;
  int total, max, min;
};

struct PaperBlock {
  int nodes, edges, stages;
  std::vector<PaperRow> rows;
};

const std::vector<PaperBlock> kPaperFig14 = {
    {10214, 30615, 1, {{"SB", 800.05, -1, 2137, 178, 90},
                       {"IGP", 13.90, 1.01, 2139, 186, 84},
                       {"IGPR", 24.07, 1.83, 2040, 172, 82}}},
    {10305, 30888, 1, {{"SB", 814.36, -1, 2099, 166, 87},
                       {"IGP", 18.89, 1.08, 2295, 219, 93},
                       {"IGPR", 29.33, 2.01, 2162, 206, 85}}},
    {10395, 31158, 2, {{"SB", 853.35, -1, 2057, 169, 94},
                       {"IGP(2)", 35.98, 2.08, 2418, 256, 92},
                       {"IGPR", 43.86, 2.76, 2139, 190, 85}}},
    {10838, 32487, 3, {{"SB", 904.81, -1, 2158, 158, 94},
                       {"IGP(3)", 76.78, 3.66, 2572, 301, 102},
                       {"IGPR", 89.48, 4.39, 2270, 237, 96}}},
};

std::string fmt_time(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: CI-sized run — the from-scratch rows use the cheap BFS
  // bisection instead of spectral, only the first (smallest) refinement is
  // repartitioned, and Time-p uses 2 threads.  Rot-checks every code path
  // of the full table in seconds.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const auto run_scratch = [&](const graph::Graph& g) {
    if (!smoke) return bench::run_sb(g, kPaperPartitions);
    runtime::WallTimer timer;
    bench::TimedPartition out;
    out.partitioning =
        spectral::recursive_graph_bisection(g, kPaperPartitions);
    out.seconds = timer.seconds();
    return out;
  };

  std::cout << "=== Figure 14: large mesh, independent refinements, P = "
            << kPaperPartitions << (smoke ? " (smoke: RGB scratch rows)" : "")
            << " ===\n";
  mesh::MeshFamily family = mesh::make_paper_mesh_b();
  if (smoke && family.refined.size() > 1) family.refined.resize(1);
  const int threads = smoke ? 2 : bench::parallel_threads();
  std::cout << "base mesh: |V|=" << family.base.num_vertices()
            << " |E|=" << family.base.num_edges()
            << " (paper: 10166/30471)\n"
            << "parallel threads for Time-p: " << threads << "\n\n";

  const bench::TimedPartition initial =
      run_scratch(family.base);
  const auto m0 = graph::compute_metrics(family.base, initial.partitioning);
  TextTable init_table(
      {"Initial graph", "Time-s", "Total", "Max", "Min"});
  init_table.add_row("SB (paper)", "-", 2118, 171, 82);
  init_table.add_row("SB (ours)", fmt_time(initial.seconds), m0.cut_total,
                     m0.cut_max, m0.cut_min);
  init_table.print(std::cout);
  std::cout << '\n';

  for (std::size_t i = 0; i < family.refined.size(); ++i) {
    const graph::Graph& g = family.refined[i];
    const graph::VertexId n_old = family.base.num_vertices();
    const PaperBlock& paper = kPaperFig14[i];

    const bench::TimedPartition sb = run_scratch(g);
    const bench::TimedPartition igp_s =
        bench::run_igp(g, initial.partitioning, n_old, false, 1);
    const bench::TimedPartition igp_p =
        bench::run_igp(g, initial.partitioning, n_old, false, threads);
    const bench::TimedPartition igpr_s =
        bench::run_igp(g, initial.partitioning, n_old, true, 1);
    const bench::TimedPartition igpr_p =
        bench::run_igp(g, initial.partitioning, n_old, true, threads);

    const auto m_sb = graph::compute_metrics(g, sb.partitioning);
    const auto m_igp = graph::compute_metrics(g, igp_s.partitioning);
    const auto m_igpr = graph::compute_metrics(g, igpr_s.partitioning);

    TextTable table({"|V|=" + std::to_string(g.num_vertices()) + " (+" +
                         std::to_string(g.num_vertices() - n_old) + ")",
                     "Time-s", "Time-p", "Total", "Max", "Min"});
    for (const PaperRow& row : paper.rows) {
      table.add_row(std::string(row.partitioner) + " (paper)",
                    fmt_time(row.time_s),
                    row.time_p < 0 ? std::string("-") : fmt_time(row.time_p),
                    row.total, row.max, row.min);
    }
    table.add_separator();
    table.add_row("SB (ours)", fmt_time(sb.seconds), "-", m_sb.cut_total,
                  m_sb.cut_max, m_sb.cut_min);
    table.add_row("IGP(" + std::to_string(igp_s.stages) + ") (ours)",
                  fmt_time(igp_s.seconds), fmt_time(igp_p.seconds),
                  m_igp.cut_total, m_igp.cut_max, m_igp.cut_min);
    table.add_row("IGPR (ours)", fmt_time(igpr_s.seconds),
                  fmt_time(igpr_p.seconds), m_igpr.cut_total, m_igpr.cut_max,
                  m_igpr.cut_min);
    table.print(std::cout);

    std::cout << "shape check: SB/IGP time ratio = "
              << sb.seconds / std::max(igp_s.seconds, 1e-9)
              << "x (paper >= 10x); stages = " << igp_s.stages << " (paper "
              << paper.stages << "); IGP/SB cut = "
              << m_igp.cut_total / m_sb.cut_total
              << "; IGPR/SB cut = " << m_igpr.cut_total / m_sb.cut_total
              << "\n\n";
  }
  return 0;
}
