#pragma once

/// \file bench_common.hpp
/// Shared helpers for the paper-table reproduction binaries.

#include <iostream>
#include <string>

#include "api/config.hpp"
#include "core/igp.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
#include "spectral/partitioners.hpp"
#include "support/table.hpp"

namespace pigp::bench {

/// Number of partitions used throughout the paper's evaluation.
inline constexpr graph::PartId kPaperPartitions = 32;

/// Threads for the "Time-p" columns (the paper used a 32-node CM-5; we use
/// min(32, hardware) worker threads).
inline int parallel_threads() {
  return std::min(32, runtime::ThreadPool::hardware_threads());
}

struct TimedPartition {
  graph::Partitioning partitioning;
  double seconds = 0.0;
  int stages = 0;
};

/// Recursive spectral bisection from scratch, timed (the SB rows).
inline TimedPartition run_sb(const graph::Graph& g, graph::PartId parts) {
  runtime::WallTimer timer;
  TimedPartition out;
  out.partitioning = spectral::recursive_spectral_bisection(g, parts);
  out.seconds = timer.seconds();
  return out;
}

/// Fully-propagated IgpOptions via the canonical SessionConfig::resolve()
/// derivation path.
inline core::IgpOptions make_igp_options(graph::PartId num_parts, bool refine,
                                         int threads,
                                         core::LpSolverKind solver =
                                             core::LpSolverKind::dense) {
  SessionConfig config;
  config.num_parts = num_parts;
  config.backend = refine ? "igpr" : "igp";
  config.num_threads = threads;
  config.solver = solver;
  core::IgpOptions options = config.resolve().igp;
  options.refine = refine;
  return options;
}

/// One IGP/IGPR repartitioning, timed.
inline TimedPartition run_igp(const graph::Graph& g_new,
                              const graph::Partitioning& old_p,
                              graph::VertexId n_old, bool refine,
                              int threads) {
  const core::IgpOptions options =
      make_igp_options(old_p.num_parts, refine, threads);
  const core::IncrementalPartitioner igp(options);
  runtime::WallTimer timer;
  TimedPartition out;
  core::IgpResult result = igp.repartition(g_new, old_p, n_old);
  out.seconds = timer.seconds();
  out.partitioning = std::move(result.partitioning);
  out.stages = result.stages;
  return out;
}

inline std::string fmt_cut(const graph::PartitionMetrics& m) {
  return std::to_string(static_cast<long long>(m.cut_total));
}

}  // namespace pigp::bench
