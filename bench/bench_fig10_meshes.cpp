// Reproduction of the workload figures: Figure 10 (test graph A and its
// refinement), Figure 12 (the 10166-node mesh), and Figure 13 (its +672
// refinement).  The paper shows pictures; the checkable content is the
// node/edge counts and the localized-refinement structure, which this
// binary reports against the paper's numbers.

#include <cmath>
#include <cstring>
#include <iostream>

#include "graph/partition.hpp"
#include "mesh/paper_meshes.hpp"
#include "support/table.hpp"

namespace {

using namespace pigp;

/// Mean distance of the step's new points from their centroid — small
/// values certify the refinement is localized (Figures 10/13 show a dense
/// blob inside the mesh).
double new_point_spread(const mesh::TriMesh& m, mesh::PointId first_new) {
  double cx = 0.0;
  double cy = 0.0;
  const int count = m.num_points() - first_new;
  if (count <= 0) return 0.0;
  for (mesh::PointId p = first_new; p < m.num_points(); ++p) {
    cx += m.point(p).x;
    cy += m.point(p).y;
  }
  cx /= count;
  cy /= count;
  double spread = 0.0;
  for (mesh::PointId p = first_new; p < m.num_points(); ++p) {
    spread += mesh::distance(m.point(p), {cx, cy});
  }
  return spread / count;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: CI-sized run — mesh A only (the 10166-node mesh-B family is
  // the expensive part of the full report).
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::cout << "=== Figure 10: test graph A and its refinements ===\n";
  const mesh::MeshSequence a = mesh::make_paper_mesh_a();
  {
    TextTable table({"step", "|V| (paper)", "|V| (ours)", "|E| (paper)",
                     "|E| (ours)", "new-pt spread"});
    const int paper_v[] = {1071, 1096, 1121, 1152, 1192};
    const int paper_e[] = {3185, 3260, 3335, 3428, 3548};
    for (std::size_t i = 0; i < a.graphs.size(); ++i) {
      const double spread =
          i == 0 ? 0.0
                 : new_point_spread(a.meshes[i],
                                    a.graphs[i - 1].num_vertices());
      table.add_row(i, paper_v[i], a.graphs[i].num_vertices(), paper_e[i],
                    a.graphs[i].num_edges(), spread);
    }
    table.print(std::cout);
    std::cout << "(spread ~0.1 on a unit-square mesh => refinement is "
                 "localized, matching the figure)\n\n";
  }

  if (smoke) {
    std::cout << "(--smoke: skipping the Figures 12/13 mesh-B family)\n";
    return 0;
  }

  std::cout << "=== Figures 12/13: the large irregular mesh family ===\n";
  const mesh::MeshFamily b = mesh::make_paper_mesh_b();
  {
    TextTable table({"graph", "|V| (paper)", "|V| (ours)", "|E| (paper)",
                     "|E| (ours)"});
    table.add_row("base (Fig 12)", 10166, b.base.num_vertices(), 30471,
                  b.base.num_edges());
    const int paper_v[] = {10214, 10305, 10395, 10838};
    const int paper_e[] = {30615, 30888, 31158, 32487};
    for (std::size_t i = 0; i < b.refined.size(); ++i) {
      table.add_row("refined +" + std::to_string(
                        b.refined[i].num_vertices() - b.base.num_vertices()),
                    paper_v[i], b.refined[i].num_vertices(), paper_e[i],
                    b.refined[i].num_edges());
    }
    table.print(std::cout);
  }

  std::cout << "\ndelta structure of the +672 refinement (Figure 13):\n";
  const auto& big = b.deltas.back();
  std::cout << "  added vertices: " << big.added_vertices.size() << '\n'
            << "  old-old edges removed by retriangulation (E2): "
            << big.removed_edges.size() << '\n'
            << "  old-old edges added (E1 among old): "
            << big.added_edges.size() << '\n';
  return 0;
}
