// Simplex micro-benchmarks (google-benchmark) backing the paper's §3 cost
// analysis: "Most of the time spent by our algorithm is in the solution of
// the linear programming formulation using the simplex method. ... Each
// iteration in the dense matrix formulation requires time proportional to
// O(vc)" and the v = 188 / c = 126 accounting for mesh A at 32 partitions.
//
// Benchmarks:
//  * balance-LP solve time vs partition count (the LP grows with P, not
//    with |V| — the paper's key scalability point);
//  * dense vs bounded-variable solver on identical programs;
//  * serial vs OpenMP-parallel pivoting on a large dense LP.
//
// The fixture also prints the v/c accounting for the paper's workload once.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/balance.hpp"
#include "core/layering.hpp"
#include "graph/generators.hpp"
#include "lp/bounded_simplex.hpp"
#include "lp/dense_simplex.hpp"
#include "support/rng.hpp"

namespace {

using namespace pigp;

/// Balance LP of a random geometric graph striped over `parts` partitions
/// with a heavy partition 0 — the exact LP family the partitioner emits.
lp::LinearProgram make_balance_lp(int parts, std::uint64_t seed) {
  const int n = 220 * parts;  // vertices scale with parts; LP should not
  const graph::Graph g =
      graph::random_geometric_graph(n, 0.9 / std::sqrt(n), seed);
  graph::Partitioning p;
  p.num_parts = parts;
  p.part.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    // Skew: the first 1.5/parts fraction goes to partition 0.
    p.part[static_cast<std::size_t>(v)] =
        static_cast<graph::PartId>((v * parts) / (n + n / 2));
  }
  const core::LayeringResult layering = core::layer_partitions(g, p);

  std::vector<double> weight(static_cast<std::size_t>(parts), 0.0);
  for (int v = 0; v < n; ++v) {
    weight[static_cast<std::size_t>(p.part[static_cast<std::size_t>(v)])] +=
        1.0;
  }
  const auto targets = graph::balance_targets(n, parts);
  std::vector<double> rhs(static_cast<std::size_t>(parts));
  for (int q = 0; q < parts; ++q) {
    rhs[static_cast<std::size_t>(q)] =
        weight[static_cast<std::size_t>(q)] -
        targets[static_cast<std::size_t>(q)];
  }
  return core::build_balance_lp(layering.eps, rhs, nullptr);
}

void BM_BalanceLpDense(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  const lp::LinearProgram program = make_balance_lp(parts, 42);
  lp::DenseSimplex solver;
  std::int64_t iterations = 0;
  for (auto _ : state) {
    const lp::Solution s = solver.solve(program);
    benchmark::DoNotOptimize(s.objective);
    iterations = s.iterations;
  }
  state.counters["lp_vars"] = program.num_variables();
  state.counters["lp_rows"] = program.num_rows();
  state.counters["pivots"] = static_cast<double>(iterations);
}
BENCHMARK(BM_BalanceLpDense)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BalanceLpBounded(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  const lp::LinearProgram program = make_balance_lp(parts, 42);
  lp::BoundedSimplex solver;
  for (auto _ : state) {
    const lp::Solution s = solver.solve(program);
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["lp_vars"] = program.num_variables();
}
BENCHMARK(BM_BalanceLpBounded)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

/// Dense random LP big enough for parallel pivoting to matter.
lp::LinearProgram make_dense_lp(int vars, int rows, std::uint64_t seed) {
  SplitMix64 rng(seed);
  lp::LinearProgram program(lp::Sense::maximize);
  for (int j = 0; j < vars; ++j) {
    program.add_variable(rng.next_in(0.5, 2.0), 0.0, rng.next_in(1.0, 4.0));
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    for (int j = 0; j < vars; ++j) {
      if (rng.next_double() < 0.6) {
        coeffs.emplace_back(j, rng.next_in(0.1, 2.0));
      }
    }
    program.add_row(lp::RowType::less_equal, std::move(coeffs),
                    rng.next_in(vars * 0.2, vars * 0.5));
  }
  return program;
}

void BM_DensePivot(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const lp::LinearProgram program = make_dense_lp(320, 260, 7);
  lp::SimplexOptions options;
  options.num_threads = threads;
  lp::DenseSimplex solver(options);
  for (auto _ : state) {
    const lp::Solution s = solver.solve(program);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_DensePivot)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// One-time printout of the paper's §3 LP-size accounting for mesh A.
void print_paper_lp_accounting() {
  const lp::LinearProgram program = make_balance_lp(32, 1994);
  std::printf(
      "[paper accounting] balance LP at P=32: v=%d movement variables, "
      "c=%d balance rows (+ bounds; paper reports v=188, c=126 for mesh A "
      "at |V|=1096)\n",
      program.num_variables(), program.num_rows());
}

}  // namespace

// --smoke maps onto a benchmark filter + short min-time so CI rot-checks
// one small instance of each benchmark family in a few seconds.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string filter =
      "--benchmark_filter=(BM_BalanceLpDense/8$|BM_BalanceLpBounded/8$|"
      "BM_DensePivot/2$)";
  std::string min_time = "--benchmark_min_time=0.05s";
  if (smoke) {
    args.push_back(filter.data());
    args.push_back(min_time.data());
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  print_paper_lp_accounting();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
