// Layering and assignment micro-benchmarks (google-benchmark): the
// per-partition BFS of Figure 3 is the paper's "inherently parallel" step;
// these benches measure its scaling with graph size and thread count, and
// the multi-source BFS of the initial assignment step.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/assign.hpp"
#include "core/layering.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "graph/partition_state.hpp"
#include "spectral/partitioners.hpp"
#include "support/rng.hpp"

namespace {

using namespace pigp;

struct Workload {
  graph::Graph g;
  graph::Partitioning p;
};

Workload make_workload(int n, int parts) {
  Workload w;
  w.g = graph::random_geometric_graph(n, 1.2 / std::sqrt(n), 17);
  w.p = spectral::recursive_graph_bisection(w.g, parts);
  return w;
}

void BM_LayeringSerial(benchmark::State& state) {
  const Workload w =
      make_workload(static_cast<int>(state.range(0)), 32);
  for (auto _ : state) {
    const core::LayeringResult r = core::layer_partitions(w.g, w.p, 1);
    benchmark::DoNotOptimize(r.eps.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LayeringSerial)->Arg(1000)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

void BM_LayeringThreads(benchmark::State& state) {
  const Workload w = make_workload(16000, 32);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const core::LayeringResult r =
        core::layer_partitions(w.g, w.p, threads);
    benchmark::DoNotOptimize(r.eps.data());
  }
}
BENCHMARK(BM_LayeringThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// Boundary-fraction sweep: full batch layering vs boundary-seeded,
/// depth-capped layering as the dirty-boundary share grows.  Starting from
/// a clean RGB partitioning (small boundary), `permille` of the vertices
/// are randomly reassigned — each reassignment dirties a vertex
/// neighborhood, so the boundary fraction tracks the argument.  The batch
/// path rescans every member of every partition no matter how small the
/// boundary is; the boundary-seeded path costs O(boundary · depth), which
/// is the whole point of maintaining the index.
struct FractionWorkload {
  graph::Graph g;
  graph::Partitioning p;
  graph::PartitionState state;
};

FractionWorkload make_fraction_workload(int n, int parts, int permille) {
  FractionWorkload w;
  w.g = graph::random_geometric_graph(n, 1.2 / std::sqrt(n), 17);
  w.p = spectral::recursive_graph_bisection(w.g, parts);
  SplitMix64 rng(2027);
  const auto dirty = static_cast<int>(
      static_cast<std::int64_t>(n) * permille / 1000);
  w.state.rebuild(w.g, w.p);
  for (int i = 0; i < dirty; ++i) {
    const auto v = static_cast<graph::VertexId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    w.state.move_vertex(w.g, w.p, v,
                        static_cast<graph::PartId>(rng.next_below(
                            static_cast<std::uint64_t>(parts))));
  }
  return w;
}

void BM_LayeringFullAtBoundaryFraction(benchmark::State& state) {
  const FractionWorkload w =
      make_fraction_workload(16000, 32, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const core::LayeringResult r = core::layer_partitions(w.g, w.p, 1);
    benchmark::DoNotOptimize(r.eps.data());
  }
  std::int64_t boundary = 0;
  for (graph::PartId q = 0; q < w.p.num_parts; ++q) {
    boundary +=
        static_cast<std::int64_t>(w.state.boundary_vertices(q).size());
  }
  state.counters["boundary_vertices"] = static_cast<double>(boundary);
}
BENCHMARK(BM_LayeringFullAtBoundaryFraction)
    ->Arg(0)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_LayeringBoundarySeededAtBoundaryFraction(benchmark::State& state) {
  const FractionWorkload w =
      make_fraction_workload(16000, 32, static_cast<int>(state.range(0)));
  // Depth-capped like the default balance stage (max_layers = 4); the
  // reseed is O(boundary), the growth O(shell).
  core::BoundaryLayering layering(w.g, w.p);
  for (auto _ : state) {
    layering.reseed(w.state, 1);
    layering.grow(4, 1);
    benchmark::DoNotOptimize(layering.eps().data());
  }
  std::int64_t boundary = 0;
  for (graph::PartId q = 0; q < w.p.num_parts; ++q) {
    boundary +=
        static_cast<std::int64_t>(w.state.boundary_vertices(q).size());
  }
  state.counters["boundary_vertices"] = static_cast<double>(boundary);
}
BENCHMARK(BM_LayeringBoundarySeededAtBoundaryFraction)
    ->Arg(0)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_AssignNewVertices(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Workload w = make_workload(n, 32);
  // Pretend the last 5% of vertices are new.
  const graph::VertexId n_old =
      static_cast<graph::VertexId>(n - n / 20);
  graph::Partitioning old_p;
  old_p.num_parts = w.p.num_parts;
  old_p.part.assign(w.p.part.begin(), w.p.part.begin() + n_old);
  for (auto _ : state) {
    const graph::Partitioning p =
        core::extend_assignment(w.g, old_p, n_old);
    benchmark::DoNotOptimize(p.part.data());
  }
}
BENCHMARK(BM_AssignNewVertices)->Arg(4000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main so --smoke can map onto a benchmark filter + short min-time:
// CI runs one small instance of each benchmark family in a few seconds.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string filter =
      "--benchmark_filter=(BM_LayeringSerial/1000$|BM_LayeringThreads/2$|"
      "BM_LayeringFullAtBoundaryFraction/10$|"
      "BM_LayeringBoundarySeededAtBoundaryFraction/10$|"
      "BM_AssignNewVertices/4000$)";
  std::string min_time = "--benchmark_min_time=0.05s";
  if (smoke) {
    args.push_back(filter.data());
    args.push_back(min_time.data());
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
